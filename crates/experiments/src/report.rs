//! Plain-text report formatting.

use simcore::SimDuration;

/// A rendered experiment artifact.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Short id, e.g. `"fig12"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The rendered text (tables + notes).
    pub body: String,
}

impl FigureReport {
    /// Builds a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, body: String) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            body,
        }
    }
}

impl std::fmt::Display for FigureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{}", self.body)
    }
}

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let t = experiments::report::table(
///     &["name", "value"],
///     vec![vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn table(headers: &[&str], rows: Vec<Vec<String>>) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration with an adaptive unit (µs under 1 ms, else ms).
pub fn fmt_dur(d: SimDuration) -> String {
    let us = d.as_micros_f64();
    if us < 1_000.0 {
        format!("{us:.1}us")
    } else {
        format!("{:.2}ms", us / 1_000.0)
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

/// Formats a value normalized to a baseline, e.g. `0.64x`.
pub fn fmt_norm(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "n/a".into()
    } else {
        format!("{:.3}x", value / baseline)
    }
}

/// Returns a warning line when a trace buffer overflowed and silently
/// dropped events, or `None` when the trace is complete. Callers that
/// render or export traces should surface this so a truncated timeline
/// is never mistaken for a quiet one.
///
/// # Examples
///
/// ```
/// use experiments::report::trace_drop_warning;
/// assert!(trace_drop_warning("fig2", 0).is_none());
/// let w = trace_drop_warning("fig2", 7).unwrap();
/// assert!(w.contains("7") && w.contains("fig2"));
/// ```
pub fn trace_drop_warning(context: &str, dropped: u64) -> Option<String> {
    if dropped == 0 {
        None
    } else {
        Some(format!(
            "warning: {context}: trace buffer overflowed — {dropped} event(s) \
             dropped; raise the trace capacity for a complete timeline"
        ))
    }
}

/// Formats a run profile as a one-line summary: deterministic engine
/// statistics plus host wall-clock (the latter is display-only and
/// never enters result comparisons).
pub fn fmt_profile(p: &crate::runner::RunProfile) -> String {
    format!(
        "events: {} scheduled, {} executed, {} cancelled; heap high-water {}; wall {:.1?}",
        p.engine.events_scheduled,
        p.engine.events_executed,
        p.engine.events_cancelled,
        p.engine.max_pending,
        p.wall,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            vec![
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in every row.
        let off = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
        assert_eq!(lines[3].find('2').unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let _ = table(&["a", "b"], vec![vec!["only-one".into()]]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(SimDuration::from_micros(250)), "250.0us");
        assert_eq!(fmt_dur(SimDuration::from_millis(3)), "3.00ms");
    }

    #[test]
    fn norm_and_pct() {
        assert_eq!(fmt_norm(50.0, 100.0), "0.500x");
        assert_eq!(fmt_norm(1.0, 0.0), "n/a");
        assert_eq!(fmt_pct(0.1234), "12.34%");
    }

    #[test]
    fn report_display() {
        let r = FigureReport::new("figX", "Title", "body\n".into());
        let s = r.to_string();
        assert!(s.starts_with("== figX — Title =="));
        assert!(s.ends_with("body\n"));
    }
}
