//! `timeline` (beyond-paper artifact): the telemetry bus rendered as
//! ASCII sparklines — how each governor's tail latency, packet
//! processing mode, and power draw evolve over the run.
//!
//! Every cell of the usual 4-governor × 3-load memcached grid samples
//! the per-core gauge bus ([`simcore::TimeSeriesSampler`]) on a fixed
//! sim-time cadence; this artifact compresses the three most telling
//! series into fixed-width sparklines so the *shape* of each policy
//! is visible in a text diff:
//!
//! * `p99` — worst per-core online P99 (the watchdog's streaming
//!   estimate), the latency the SLO cares about;
//! * `poll` — number of cores in NAPI polling mode, the paper's mode
//!   signal (NMAP holds it high under load, ondemand flaps);
//! * `power` — chip power draw in milliwatts, where the energy story
//!   plays out.
//!
//! The counters columns pin the sampler's bounded-memory behavior:
//! rows retained, final interval after decimation doublings, and how
//! many samples decimation dropped.

use crate::report::{self, FigureReport};
use crate::runner::{RunConfig, RunResult, Scale};
use crate::supervisor::Supervisor;
use simcore::{sparkline, Gauge};
use workload::LoadLevel;

const GOV_LABELS: [&str; 4] = ["ondemand", "performance", "NCAP", "NMAP"];

/// Sparkline column width: wide enough to show mode flapping, narrow
/// enough that the table fits a terminal.
const SPARK_WIDTH: usize = 24;

/// The sweep's cell list: the same governor-major memcached grid as
/// the `energy` artifact, so the sparklines can be read against its
/// tables. Public so the determinism suite can replay the exact cells
/// serially.
pub fn configs(scale: Scale) -> Vec<RunConfig> {
    super::energy::configs(scale)
}

/// Runs the sweep under `sup`.
pub fn sweep(scale: Scale, sup: &Supervisor) -> Vec<RunResult> {
    sup.run_many(configs(scale))
}

fn index(gov: usize, level: usize) -> usize {
    gov * 3 + level
}

/// Renders the artifact from a completed sweep (separated from
/// [`timeline`] so the golden test can drive it at a fixed scale).
pub fn render(results: &[RunResult]) -> FigureReport {
    let mut body = String::new();
    let sampled = results.iter().any(|r| !r.timeline.is_empty());
    body.push_str(
        "\n[memcached — telemetry timeline sparklines; p99 = worst per-core \
         online P99, poll = cores in NAPI polling mode, power = chip \
         milliwatts; low..high maps to ` .:-=+*#%@`]\n",
    );
    if !sampled {
        body.push_str(
            "\n(timeline telemetry absent: rebuild with `--features obs` to \
             populate the sparkline columns)\n",
        );
    }
    let headers = [
        "gov/load", "rows", "iv-us", "dec", "drop", "p99", "poll", "power",
    ];
    let mut rows = Vec::new();
    for (gi, gov) in GOV_LABELS.iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let t = &results[index(gi, li)].timeline;
            rows.push(vec![
                format!("{gov}/{level}"),
                t.rows().to_string(),
                (t.interval_ns / 1_000).to_string(),
                t.decimations.to_string(),
                t.dropped.to_string(),
                sparkline(&t.series_max(Gauge::P99Ns), SPARK_WIDTH),
                sparkline(&t.series_sum(Gauge::NapiPolling), SPARK_WIDTH),
                sparkline(&t.series_sum(Gauge::PowerMw), SPARK_WIDTH),
            ]);
        }
    }
    body.push_str(&report::table(&headers, rows));
    body.push_str(
        "\nReading: performance pins power flat and keeps P99 low at all \
         loads — the brute-force baseline. ondemand's poll track flaps as \
         cores oscillate between interrupt and polling mode, and each flap \
         prints as a P99 ridge. NMAP's poll track saturates under high load \
         and its power track steps with it: the governor raises the \
         operating point exactly while cores sit in polling mode, which is \
         the paper's mechanism drawn over time.\n",
    );
    FigureReport::new(
        "timeline",
        "Telemetry timeline — P99, packet mode, and power over the run",
        body,
    )
}

/// Builds the artifact: 4 governors × 3 loads on memcached.
pub fn timeline(scale: Scale, sup: &Supervisor) -> FigureReport {
    render(&sweep(scale, sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_has_all_cells() {
        let fig = timeline(Scale::Quick, &Supervisor::new());
        let data_rows = fig
            .body
            .lines()
            .filter(|l| GOV_LABELS.iter().any(|g| l.starts_with(&format!("{g}/"))))
            .count();
        assert_eq!(data_rows, 12);
        assert!(fig.body.contains("p99"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn cells_record_bounded_timelines() {
        let results = sweep(Scale::Quick, &Supervisor::new());
        for r in &results {
            let t = &r.timeline;
            assert!(!t.is_empty(), "{}: no timeline recorded", r.governor);
            assert!(t.rows() <= 512, "{}: cap exceeded", r.governor);
            assert!(
                t.interval_ns == t.base_interval_ns << t.decimations,
                "{}: interval must double once per decimation",
                r.governor
            );
        }
        let fig = render(&results);
        assert!(!fig.body.contains("timeline telemetry absent"));
    }
}
