//! `breakdown` (beyond-paper artifact): per-request latency
//! attribution and the streaming SLO watchdog.
//!
//! Every request's end-to-end latency is decomposed into the eleven
//! pipeline stages of [`simcore::Stage`] (NIC ring wait, ITR delay,
//! IRQ dispatch, ksoftirqd scheduling, C-state wake, P-state stall,
//! app service time, …). The decomposition is *exact*: the
//! conservation ledger asserts that the attributed nanoseconds equal
//! the measured end-to-end nanoseconds for every single request, so
//! the stage shares below always sum to 100%.
//!
//! The second table reports the SLO watchdog: an online windowed-P99
//! estimator per core that flags violation episodes as they happen,
//! giving time-to-detect and time-to-recover per governor — the
//! operational view of §3's "where does ondemand lose the latency".

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, RunResult, Scale};
use crate::supervisor::Supervisor;
use crate::thresholds;
use simcore::Stage;
use workload::{AppKind, LoadLevel, LoadSpec};

const GOV_LABELS: [&str; 4] = ["ondemand", "performance", "NCAP", "NMAP"];

fn governors(app: AppKind) -> [GovernorKind; 4] {
    [
        GovernorKind::Ondemand,
        GovernorKind::Performance,
        GovernorKind::Ncap(thresholds::ncap_threshold(app)),
        GovernorKind::Nmap(thresholds::nmap_config(app)),
    ]
}

/// The sweep: governor-major so rows group naturally, memcached only
/// (nginx shows the same shape with a longer service stage).
fn sweep(scale: Scale, sup: &Supervisor) -> Vec<RunResult> {
    let app = AppKind::Memcached;
    let mut configs = Vec::new();
    for gov in governors(app) {
        for level in LoadLevel::all() {
            configs.push(RunConfig::new(
                app,
                LoadSpec::preset(app, level),
                gov,
                scale,
            ));
        }
    }
    sup.run_many(configs)
}

fn index(gov: usize, level: usize) -> usize {
    gov * 3 + level
}

/// Formats nanoseconds as a watchdog-table duration cell.
fn fmt_ns(ns: u64) -> String {
    report::fmt_dur(simcore::SimDuration::from_nanos(ns))
}

/// Renders the artifact from a completed sweep (separated from
/// [`breakdown`] so the golden test can drive it at a fixed scale).
pub fn render(results: &[RunResult]) -> FigureReport {
    let mut body = String::new();
    let attributed = results.iter().any(|r| r.attrib.requests > 0);

    body.push_str(
        "\n[memcached — share of end-to-end P99-relevant latency per stage; \
         stages sum to 100% by construction (ledger-checked)]\n",
    );
    if !attributed {
        body.push_str(
            "\n(attribution data absent: rebuild with `--features obs` to \
             populate the stage columns)\n",
        );
    }
    let mut headers = vec!["gov/load"];
    headers.extend(Stage::ALL.iter().map(|s| s.label()));
    headers.push("e2e-mean");
    let mut rows = Vec::new();
    for (gi, gov) in GOV_LABELS.iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let r = &results[index(gi, li)];
            let mut row = vec![format!("{gov}/{level}")];
            for stage in Stage::ALL {
                row.push(report::fmt_pct(r.attrib.share(stage)));
            }
            let mean = r
                .attrib
                .e2e_total_ns
                .checked_div(r.attrib.requests)
                .unwrap_or(0);
            row.push(fmt_ns(mean));
            rows.push(row);
        }
    }
    body.push_str(&report::table(&headers, rows));

    body.push_str(
        "\n[SLO watchdog — online windowed P99 per core; an episode opens when \
         the window's P99 crosses the SLO and closes when it recovers]\n",
    );
    let wd_headers = [
        "gov/load",
        "episodes",
        "first-detect",
        "violated-for",
        "mean-detect",
        "mean-recover",
        "open?",
    ];
    let mut wd_rows = Vec::new();
    for (gi, gov) in GOV_LABELS.iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let r = &results[index(gi, li)];
            let w = &r.watchdog;
            let first = if w.first_detect_ns == u64::MAX {
                "-".to_string()
            } else {
                fmt_ns(w.first_detect_ns)
            };
            wd_rows.push(vec![
                format!("{gov}/{level}"),
                w.episodes.to_string(),
                first,
                fmt_ns(w.total_violation_ns),
                fmt_ns(w.mean_detect_ns),
                fmt_ns(w.mean_recover_ns),
                if w.open_episode { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    body.push_str(&report::table(&wd_headers, wd_rows));

    body.push_str(
        "\nPaper shape (§3): at low load ondemand's under-clocking shows up \
         directly as P-state stall and C-state wake; at medium/high load the \
         slow cores fall behind the arrival rate, so the loss migrates into \
         ksoftirqd/ring residency and app-queue wait — the paper's core \
         mechanism. performance erases the DVFS stages at full power cost. \
         The watchdog gives the operational view: ondemand opens repeated \
         violation episodes with tens-of-millisecond recovery times, while \
         NCAP and NMAP stay clean at every load.\n",
    );
    FigureReport::new(
        "breakdown",
        "Per-request latency attribution and SLO watchdog",
        body,
    )
}

/// Builds the artifact: 4 governors × 3 loads on memcached.
pub fn breakdown(scale: Scale, sup: &Supervisor) -> FigureReport {
    render(&sweep(scale, sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_has_all_cells() {
        let fig = breakdown(Scale::Quick, &Supervisor::new());
        let data_rows = fig
            .body
            .lines()
            .filter(|l| GOV_LABELS.iter().any(|g| l.starts_with(&format!("{g}/"))))
            .count();
        // 12 cells in the share table + 12 in the watchdog table.
        assert_eq!(data_rows, 24);
        assert!(fig.body.contains("SLO watchdog"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn shares_sum_to_one_when_attributed() {
        let results = sweep(Scale::Quick, &Supervisor::new());
        for r in &results {
            assert!(r.attrib.requests > 0, "no attributed requests");
            assert_eq!(r.attrib.mismatches, 0, "per-request stage-sum mismatch");
            let total: f64 = Stage::ALL.iter().map(|&s| r.attrib.share(s)).sum();
            assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        }
        let fig = render(&results);
        assert!(!fig.body.contains("attribution data absent"));
    }
}
