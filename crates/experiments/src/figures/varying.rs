//! Fig 16 (§6.3): a varying-load memcached workload (the load level
//! switches randomly among low/medium/high every 500 ms) comparing
//! NMAP against the long-term feedback baseline Parties. NMAP needs
//! no re-profiling as the load moves; Parties reacts only every
//! 500 ms and misses the bursts.

use crate::report::{self, FigureReport};
use crate::runner::{run_with_testbed, GovernorKind, RunConfig, RunResult, Scale};
use crate::thresholds;
use simcore::{RngStream, SimDuration};
use workload::{AppKind, LoadLevel, LoadSpec};

fn varying_run(governor: GovernorKind, scale: Scale, seed: u64) -> RunResult {
    let cfg = RunConfig {
        warmup: SimDuration::from_millis(200),
        duration: match scale {
            Scale::Quick => SimDuration::from_millis(2_500),
            Scale::Full => SimDuration::from_millis(5_000),
        },
        ..RunConfig::new(
            AppKind::Memcached,
            LoadSpec::preset(AppKind::Memcached, LoadLevel::Medium),
            governor,
            scale,
        )
    }
    .with_seed(seed)
    .with_traces();
    let total = cfg.warmup + cfg.duration;
    let (result, _tb) = run_with_testbed(cfg, move |_tb, sim| {
        // Schedule the load switches: every 500 ms pick one of the
        // three levels at random (same derivation for every governor).
        let mut rng = RngStream::derive(seed, "load-switch", 0);
        let mut t = SimDuration::from_millis(500);
        while simcore::SimTime::ZERO + t < simcore::SimTime::ZERO + total {
            let level = match rng.below(3) {
                0 => LoadLevel::Low,
                1 => LoadLevel::Medium,
                _ => LoadLevel::High,
            };
            let spec = LoadSpec::preset(AppKind::Memcached, level);
            sim.schedule_at(simcore::SimTime::ZERO + t, move |w, sim| {
                w.switch_load(sim, spec);
            });
            t += SimDuration::from_millis(500);
        }
    });
    result
}

/// Fig 16: per-request latency and P-state behaviour under the
/// varying load, NMAP vs Parties.
pub fn fig16(scale: Scale) -> FigureReport {
    let seed = 42;
    let nmap = varying_run(
        GovernorKind::Nmap(thresholds::nmap_config(AppKind::Memcached)),
        scale,
        seed,
    );
    let parties = varying_run(GovernorKind::Parties, scale, seed);
    let mut body = String::new();
    let mut rows = Vec::new();
    for r in [&nmap, &parties] {
        let t = r
            .traces
            .as_ref()
            .expect("trace-collecting runs always carry traces");
        // P-state residency summary for core 0 (time-weighted).
        let series: simcore::TimeSeries = t
            .pstates_core0
            .iter()
            .map(|&(tt, p)| (tt, p as f64))
            .collect();
        let avg_p = series.step_time_average(t.measure_start, t.measure_end, 15.0);
        rows.push(vec![
            r.governor.clone(),
            report::fmt_dur(r.p99),
            report::fmt_pct(r.frac_above_slo),
            format!("P{avg_p:.1}"),
            r.dvfs_transitions.to_string(),
        ]);
    }
    body.push_str(&report::table(
        &[
            "governor",
            "p99",
            "over_slo",
            "avg_pstate(core0)",
            "dvfs_transitions",
        ],
        rows,
    ));

    // A 150 ms excerpt of the P-state trace for each governor.
    for r in [&nmap, &parties] {
        let t = r
            .traces
            .as_ref()
            .expect("trace-collecting runs always carry traces");
        body.push_str(&format!(
            "\nP-state changes, {} (first 150 ms):\n",
            r.governor
        ));
        let mut shown = 0;
        for &(tt, p) in &t.pstates_core0 {
            let off = tt.saturating_since(t.measure_start);
            if off < SimDuration::from_millis(150) && shown < 20 {
                body.push_str(&format!("  {:>9} -> P{}\n", report::fmt_dur(off), p));
                shown += 1;
            }
        }
        if shown == 0 {
            body.push_str("  (no change — the governor held its state)\n");
        }
    }
    body.push_str(
        "\nPaper shape: NMAP keeps violations under ~0.2% without re-tuning as the \
         load moves; Parties, deciding every 500 ms on observed slack, under-provisions \
         bursts (their testbed: 26.62% of requests over the SLO).\n",
    );
    FigureReport::new("fig16", "Varying load: NMAP vs Parties (memcached)", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmap_beats_parties_under_varying_load() {
        let rep = fig16(Scale::Quick);
        let grab = |name: &str| -> f64 {
            rep.body
                .lines()
                .find(|l| l.starts_with(name))
                .map(|l| {
                    l.split_whitespace()
                        .nth(2)
                        .unwrap()
                        .trim_end_matches('%')
                        .parse()
                        .unwrap()
                })
                .expect("row")
        };
        let nmap_viol = grab("NMAP");
        let parties_viol = grab("Parties");
        assert!(
            parties_viol > nmap_viol,
            "Parties ({parties_viol}%) must violate more than NMAP ({nmap_viol}%)"
        );
        assert!(nmap_viol < 2.0, "NMAP must stay near-SLO ({nmap_viol}%)");
        assert!(
            parties_viol > 5.0,
            "Parties must miss bursts ({parties_viol}%)"
        );
    }
}
