//! Beyond-paper artifact: overload control vs metastable failure.
//!
//! The headline property of the overload-control subsystem, rendered
//! as a checked experiment. A fleet is driven into overload by a
//! composed **metastable trigger** — a load spike multiplying the
//! offered rate while one server crashes — and the trigger then
//! clears. Two otherwise identical fleets race through it:
//!
//! * **control on** — bounded app queues with sojourn admission,
//!   per-client retry budgets, per-server circuit breakers, and
//!   LB-side brownout (`FleetConfig::with_overload_control`);
//! * **control off** — the seed fleet's unconditional
//!   backoff-retries and unbounded queues.
//!
//! With control on, shedding bounds every queue, retry budgets choke
//! the retry storm, and fleet P99 re-enters the SLO within a bounded
//! window after the trigger clears. With control off the retry storm
//! outlives its trigger: timeouts spawn retries, retries re-saturate
//! the servers, the extra queueing spawns more timeouts — the classic
//! metastable failure, sustained long after the spike ends.
//!
//! The recovery bound is *measured*, not eyeballed: each cell re-runs
//! with the measurement boundary moved to `trigger clear + bound`
//! (same seed, same end of run — warm-up only repositions the
//! latency sketches, so the dynamics are identical) and the tail
//! window's P99 is compared against the SLO. [`Outcome::check`] turns
//! the dichotomy into a typed failure, pinned by `tests/overload.rs`.

use cluster::{FleetConfig, FleetResult, GovernorKind, HedgePolicy, ProbePolicy, RetryPolicy};
use simcore::fault::{FaultKind, FaultPlan, FaultScope};
use simcore::{SimDuration, SimTime};
use workload::AppKind;

use crate::report::{self, FigureReport};
use crate::thresholds;
use crate::Scale;

/// When the metastable trigger (spike + crash) engages.
pub const TRIGGER_START_MS: u64 = 150;
/// When the trigger clears; recovery is measured from here.
pub const TRIGGER_CLEAR_MS: u64 = 250;
/// The offered-rate multiplier during the trigger window.
pub const SPIKE_FACTOR: f64 = 4.0;
/// The recovery bound: with control on, fleet P99 must be back under
/// the SLO this long after the trigger clears.
pub const RECOVERY_BOUND_MS: u64 = 100;
/// The fleet SLO the tail window is judged against (the memcached
/// single-box SLO; the fleet adds two wire hops but is expected to
/// operate well inside it once recovered).
pub const SLO: SimDuration = SimDuration::from_millis(1);

/// The metastable trigger: a fleet-wide load spike composed with a
/// server crash, both clearing at [`TRIGGER_CLEAR_MS`]. The crash
/// concentrates the spike on the survivors; when both clear, only the
/// fleet's own retry feedback can keep it saturated.
pub fn metastable_plan() -> FaultPlan {
    let win = FaultScope::window(
        SimTime::from_millis(TRIGGER_START_MS),
        SimTime::from_millis(TRIGGER_CLEAR_MS),
    );
    FaultPlan::new()
        .with_seed(44)
        .inject(
            FaultKind::LoadSpike {
                factor: SPIKE_FACTOR,
            },
            win,
        )
        .inject(FaultKind::ServerCrash, win.on_core(1))
}

/// Fleet geometry: (servers, total rps, warm-up, measured duration).
/// The trigger windows above sit inside the measured window at both
/// scales; Full widens the fleet and lengthens the recovered tail.
fn geometry(scale: Scale) -> (usize, f64, SimDuration, SimDuration) {
    match scale {
        Scale::Quick => (
            2,
            1_600_000.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        ),
        Scale::Full => (
            2,
            1_600_000.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(900),
        ),
    }
}

/// The shared fleet skeleton: NMAP servers, tight client timeouts
/// (the retry feedback path), hedging off so the storm is pure
/// retry-driven, and the metastable fault schedule.
fn base_config(scale: Scale) -> FleetConfig {
    let (servers, rps, warmup, duration) = geometry(scale);
    let app = AppKind::Memcached;
    FleetConfig::new(
        servers,
        app,
        rps,
        GovernorKind::Nmap(thresholds::nmap_config(app)),
    )
    .with_window(warmup, duration)
    .with_seed(9)
    .with_retry(RetryPolicy {
        timeout: SimDuration::from_millis(1),
        max_attempts: 6,
        backoff_base: SimDuration::from_micros(100),
        backoff_cap: SimDuration::from_micros(500),
    })
    .with_hedge(None::<HedgePolicy>)
    .with_probe(ProbePolicy {
        interval: SimDuration::from_millis(5),
        timeout: SimDuration::from_millis(1),
        fail_threshold: 3,
        ok_threshold: 2,
    })
    .with_fault_plan(metastable_plan())
}

/// One dichotomy cell, with the measurement boundary at `warmup`.
fn cell(scale: Scale, controlled: bool, warmup: SimDuration) -> FleetConfig {
    let cfg = base_config(scale);
    let end = cfg.warmup + cfg.duration;
    let cfg = cfg.with_window(warmup, end - warmup);
    if controlled {
        cfg.with_overload_control()
    } else {
        cfg
    }
}

/// Start of the post-recovery tail window: trigger clear + bound.
fn tail_start() -> SimDuration {
    SimDuration::from_millis(TRIGGER_CLEAR_MS + RECOVERY_BOUND_MS)
}

/// One arm of the dichotomy: the full-window run (headline counters)
/// plus the tail-probe re-run (same seed and end of run, measurement
/// boundary moved past the recovery bound).
#[derive(Debug, Clone)]
pub struct Arm {
    /// Whether overload control was on.
    pub controlled: bool,
    /// The full-window result.
    pub full: FleetResult,
    /// The tail-window result; its `p99` is the recovery probe.
    pub tail: FleetResult,
}

impl Arm {
    /// True if this arm's tail window is back inside the SLO.
    pub fn recovered(&self) -> bool {
        self.tail.p99 <= SLO
    }
}

/// The dichotomy outcome: both arms of the experiment.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Overload control on.
    pub on: Arm,
    /// Overload control off.
    pub off: Arm,
}

impl Outcome {
    /// The headline property as a typed check (the fleet analogue of
    /// the chaos soak's `join_recovery` bound): control ON must
    /// re-enter the SLO within [`RECOVERY_BOUND_MS`] of the trigger
    /// clearing, and control OFF — same seed, same trigger — must
    /// still be in violation there, or the scenario is not actually
    /// metastable and proves nothing.
    pub fn check(&self) -> Result<(), String> {
        if !self.on.recovered() {
            return Err(format!(
                "overload control failed to recover: tail P99 {:?} > SLO {:?} at {:?} after the \
                 trigger cleared",
                self.on.tail.p99,
                SLO,
                SimDuration::from_millis(RECOVERY_BOUND_MS),
            ));
        }
        if self.off.recovered() {
            return Err(format!(
                "uncontrolled fleet recovered anyway (tail P99 {:?} ≤ SLO {:?}): the trigger is \
                 not metastable, so the experiment proves nothing",
                self.off.tail.p99, SLO,
            ));
        }
        Ok(())
    }
}

/// Runs the 2×2 sweep: {control on, off} × {full window, tail probe}.
pub fn dichotomy(scale: Scale) -> Outcome {
    let tail = tail_start();
    let (_, _, warmup, _) = geometry(scale);
    let configs = vec![
        cell(scale, true, warmup),
        cell(scale, true, tail),
        cell(scale, false, warmup),
        cell(scale, false, tail),
    ];
    let mut results = cluster::run_fleet_many(configs);
    let off_tail = results.pop().expect("4 cells");
    let off_full = results.pop().expect("4 cells");
    let on_tail = results.pop().expect("4 cells");
    let on_full = results.pop().expect("4 cells");
    Outcome {
        on: Arm {
            controlled: true,
            full: on_full,
            tail: on_tail,
        },
        off: Arm {
            controlled: false,
            full: off_full,
            tail: off_tail,
        },
    }
}

/// Renders the artifact from a completed sweep (separated from
/// [`overload`] so the golden test can drive it at a fixed scale).
pub fn render(outcome: &Outcome) -> FigureReport {
    let mut body = String::new();
    let injected = outcome.on.full.faults.total() > 0 || outcome.off.full.faults.total() > 0;
    if !injected {
        body.push_str(
            "\n(cluster fault injection inert: rebuild with `--features \
             fault` to arm the metastable trigger)\n",
        );
    }
    body.push_str(&format!(
        "\n[metastable trigger: {SPIKE_FACTOR}x load spike + server crash, \
         {TRIGGER_START_MS}-{TRIGGER_CLEAR_MS} ms]\n"
    ));
    let headers = [
        "control",
        "admitted",
        "done",
        "t/o",
        "shed",
        "att-shed",
        "retry",
        "denied",
        "brk-open",
        "short-ckt",
        "avail",
        "fleet-p99",
    ];
    let mut rows = Vec::new();
    for arm in [&outcome.on, &outcome.off] {
        let r = &arm.full;
        rows.push(vec![
            if arm.controlled { "on" } else { "off" }.to_string(),
            r.admitted.to_string(),
            r.completed.to_string(),
            r.timed_out.to_string(),
            r.shed.to_string(),
            r.attempts_shed.to_string(),
            r.retries.to_string(),
            r.retry_budget_denied.to_string(),
            r.breaker_opens.to_string(),
            r.breaker_short_circuits.to_string(),
            report::fmt_pct(r.availability),
            report::fmt_dur(r.p99),
        ]);
    }
    body.push_str(&report::table(&headers, rows));

    body.push_str(&format!(
        "\n[recovery probe: tail window starts {RECOVERY_BOUND_MS} ms after the \
         trigger clears]\n"
    ));
    let headers = ["control", "tail-p99", "slo", "verdict"];
    let mut rows = Vec::new();
    for arm in [&outcome.on, &outcome.off] {
        rows.push(vec![
            if arm.controlled { "on" } else { "off" }.to_string(),
            report::fmt_dur(arm.tail.p99),
            report::fmt_dur(SLO),
            if arm.recovered() {
                "recovered".to_string()
            } else {
                "violation sustained".to_string()
            },
        ]);
    }
    body.push_str(&report::table(&headers, rows));

    match outcome.check() {
        Ok(()) => body.push_str(&format!(
            "\nDichotomy holds: with admission control, retry budgets, circuit \
             breakers, and brownout engaged the fleet re-enters its SLO within \
             {RECOVERY_BOUND_MS} ms of the trigger clearing; the identical fleet \
             without them sustains the violation on retry feedback alone. \
             Conservation stayed integer-exact in all four runs: admitted == \
             completed + timed-out + shed + in-flight, with every shed retry \
             counted as a failed attempt.\n"
        )),
        Err(e) => body.push_str(&format!("\nDICHOTOMY CHECK FAILED: {e}\n")),
    }
    FigureReport::new(
        "overload",
        "Overload control vs metastable failure: admission, retry budgets, brownout",
        body,
    )
}

/// Builds the artifact: the metastable dichotomy at `scale`.
pub fn overload(scale: Scale) -> FigureReport {
    render(&dichotomy(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_fits_inside_the_measured_window_at_both_scales() {
        for scale in [Scale::Quick, Scale::Full] {
            let (servers, _, warmup, duration) = geometry(scale);
            let end = SimTime::ZERO + warmup + duration;
            let plan = metastable_plan();
            plan.validate(servers).expect("plan must validate");
            for spec in &plan.specs {
                assert!(spec.scope.start >= SimTime::ZERO + warmup);
                assert!(spec.scope.end <= end, "no recovered tail at {scale:?}");
            }
            // The tail probe must leave a non-empty window.
            assert!(SimTime::ZERO + tail_start() < end);
        }
    }

    #[test]
    fn cells_validate_and_share_the_end_of_run() {
        for scale in [Scale::Quick, Scale::Full] {
            let (_, _, warmup, _) = geometry(scale);
            let full = cell(scale, true, warmup);
            let tail = cell(scale, false, tail_start());
            full.validate().expect("controlled cell validates");
            tail.validate().expect("tail cell validates");
            assert_eq!(
                full.warmup + full.duration,
                tail.warmup + tail.duration,
                "probe must not change the end of run"
            );
            assert_eq!(full.seed, tail.seed, "probe must not change the seed");
        }
    }
}
