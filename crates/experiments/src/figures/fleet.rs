//! Beyond-paper artifact: the fault-tolerant fleet tier.
//!
//! NMAP is a single-box policy; this artifact asks what its latency
//! and energy story looks like when N independent NMAP servers sit
//! behind a front end with health-checked failover, retry/timeout,
//! and tail-latency hedging (`cluster::run_fleet`). Two sweeps:
//!
//! * **calm** — no cluster faults; the fleet is pure steady-state
//!   steering, so retries/failovers stay near zero and the interest
//!   is fleet P99 vs the per-server internal P99.
//! * **chaos** — a composed schedule of server crashes, a stale LB
//!   health view, a link-latency spike, a partition, and hash-skew,
//!   exercising ejection/readmission, retry, hedging, and the exact
//!   cross-server conservation roll-up.
//!
//! Unlike the single-box sweeps, the fleet cells run through
//! [`cluster::run_fleet_many`] directly rather than through the
//! [`crate::supervisor::Supervisor`]: the supervisor's checkpoint
//! cells are keyed and serialized around [`crate::RunConfig`] /
//! [`crate::RunResult`], and a fleet run is a different shape (its
//! own config, its own conservation roll-up). The sweep is 8 cells
//! of quick fleets, so retry/quarantine adds nothing here.

use cluster::{FleetConfig, FleetResult, GovernorKind, HedgePolicy, ProbePolicy, RetryPolicy};
use simcore::fault::{FaultKind, FaultPlan, FaultScope};
use simcore::{SimDuration, SimTime};
use workload::AppKind;

use crate::report::{self, FigureReport};
use crate::thresholds;
use crate::Scale;

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

fn win(start: u64, end: u64) -> FaultScope {
    FaultScope::window(ms(start), ms(end))
}

/// The governor subset the fleet sweep compares: the paper's two
/// conventional poles, NMAP itself, and the state-of-the-art NCAP.
pub fn fleet_governors() -> Vec<(&'static str, GovernorKind)> {
    let app = AppKind::Memcached;
    vec![
        ("performance", GovernorKind::Performance),
        ("ondemand", GovernorKind::Ondemand),
        ("nmap", GovernorKind::Nmap(thresholds::nmap_config(app))),
        ("ncap", GovernorKind::Ncap(thresholds::ncap_threshold(app))),
    ]
}

/// The two cluster schedules. Windows live inside [150, 450) ms —
/// after the fleet warm-up (100 ms) and comfortably before the quick
/// end of run (500 ms), leaving a calm tail for readmission.
pub fn plans() -> Vec<(&'static str, FaultPlan)> {
    let calm = FaultPlan::new().with_seed(44);
    // Composed cluster chaos: two staggered server crashes (servers 1
    // and 3), a stale LB health view across the first crash boundary,
    // a link-latency spike on server 2 (slow-but-alive: probe
    // timeouts eject it without a crash), a hard partition of server
    // 0, and steering skew toward server 0 for most of the run.
    let chaos = FaultPlan::new()
        .with_seed(44)
        .inject(FaultKind::ServerCrash, win(150, 280).on_core(1))
        .inject(FaultKind::ServerCrash, win(230, 360).on_core(3))
        .inject(FaultKind::HealthViewStale, win(150, 220))
        .inject(
            FaultKind::LinkLatencySpike {
                extra: SimDuration::from_millis(2),
            },
            win(180, 330).on_core(2),
        )
        .inject(FaultKind::LinkPartition, win(300, 380).on_core(0))
        .inject(FaultKind::HashSkew { factor: 3.0 }, win(150, 430));
    vec![("calm", calm), ("chaos", chaos)]
}

/// Fleet geometry for a scale: (servers, total rps, warm-up,
/// measured duration). Both scales share the fault windows above;
/// Full just measures a longer recovered tail on a wider fleet.
fn geometry(scale: Scale) -> (usize, f64, SimDuration, SimDuration) {
    match scale {
        Scale::Quick => (
            4,
            48_000.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(400),
        ),
        Scale::Full => (
            8,
            96_000.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(1_200),
        ),
    }
}

fn config(scale: Scale, gov: GovernorKind, plan: FaultPlan) -> FleetConfig {
    let (servers, rps, warmup, duration) = geometry(scale);
    FleetConfig::new(servers, AppKind::Memcached, rps, gov)
        .with_window(warmup, duration)
        .with_seed(9)
        .with_retry(RetryPolicy {
            timeout: SimDuration::from_millis(2),
            max_attempts: 3,
            backoff_base: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(8),
        })
        .with_hedge(Some(HedgePolicy {
            quantile: 0.95,
            floor: SimDuration::from_micros(300),
        }))
        .with_probe(ProbePolicy {
            interval: SimDuration::from_millis(5),
            timeout: SimDuration::from_millis(1),
            fail_threshold: 3,
            ok_threshold: 2,
        })
        .with_fault_plan(plan)
}

/// The sweep: plan-major, 2 schedules × 4 governors, through the
/// fleet worker pool.
pub fn sweep(scale: Scale) -> Vec<FleetResult> {
    let mut configs = Vec::new();
    for (_, plan) in plans() {
        for (_, gov) in fleet_governors() {
            configs.push(config(scale, gov, plan.clone()));
        }
    }
    cluster::run_fleet_many(configs)
}

/// Renders the artifact from a completed sweep (separated from
/// [`fleet`] so the golden test can drive it at a fixed scale).
pub fn render(results: &[FleetResult]) -> FigureReport {
    let governors = fleet_governors();
    let mut body = String::new();
    let injected = results.iter().any(|r| r.faults.total() > 0);
    if !injected {
        body.push_str(
            "\n(cluster fault injection inert: rebuild with `--features \
             fault` to arm the chaos schedule)\n",
        );
    }
    for (pi, (plan_label, plan)) in plans().iter().enumerate() {
        let kinds: Vec<&'static str> = plan.specs.iter().map(|s| s.kind.label()).collect();
        if kinds.is_empty() {
            body.push_str(&format!("\n[{plan_label} fleet — no cluster faults]\n"));
        } else {
            body.push_str(&format!("\n[{plan_label} fleet — {}]\n", kinds.join(", ")));
        }
        let headers = [
            "governor",
            "admitted",
            "done",
            "t/o",
            "open",
            "retry",
            "hedge",
            "dup",
            "failover",
            "eject",
            "readmit",
            "avail",
            "fleet-p99",
            "energy",
        ];
        let mut rows = Vec::new();
        for (gi, (gov_label, _)) in governors.iter().enumerate() {
            let r = &results[pi * governors.len() + gi];
            rows.push(vec![
                (*gov_label).to_string(),
                r.admitted.to_string(),
                r.completed.to_string(),
                r.timed_out.to_string(),
                r.in_flight_at_end.to_string(),
                r.retries.to_string(),
                r.hedges.to_string(),
                r.suppressed.to_string(),
                r.failovers.to_string(),
                r.ejections.to_string(),
                r.readmissions.to_string(),
                report::fmt_pct(r.availability),
                report::fmt_dur(r.p99),
                format!("{:.1} J", r.energy_j),
            ]);
        }
        body.push_str(&report::table(&headers, rows));
    }
    // Per-server view of the NMAP fleet under chaos: which boxes
    // crashed, who absorbed the failed-over flows, and whether every
    // server's degradation machine came back clean.
    if let Some(nmap_chaos) = results.get(governors.len() + 2) {
        body.push_str(&format!(
            "\n[per-server: {} under chaos]\n",
            nmap_chaos.governor
        ));
        let headers = [
            "server", "steered", "served", "won", "crashes", "ejected", "p99", "energy", "degr",
            "recov",
        ];
        let mut rows = Vec::new();
        for (i, s) in nmap_chaos.servers.iter().enumerate() {
            rows.push(vec![
                format!("s{i}"),
                s.dispatched.to_string(),
                s.delivered.to_string(),
                s.won.to_string(),
                s.crashes.to_string(),
                if s.ejected_at_end { "yes" } else { "no" }.to_string(),
                report::fmt_dur(s.p99_internal),
                format!("{:.1} J", s.energy_j),
                s.degradation.degradations.to_string(),
                s.degradation.recoveries.to_string(),
            ]);
        }
        body.push_str(&report::table(&headers, rows));
    }
    body.push_str(
        "\nEvery fleet passed its cross-server conservation roll-up \
         exactly: requests admitted equal completions plus timeouts plus \
         the in-flight tail, and attempts dispatched equal completions \
         plus crash/partition losses plus suppressed hedge duplicates \
         plus outstanding attempts — even across crash boundaries that \
         drop whole servers mid-flight. `dup` counts first-response-wins \
         suppressions of hedge/retry duplicates; `eject`/`readmit` are \
         the health checker's hysteretic LB-view transitions.\n",
    );
    FigureReport::new(
        "fleet",
        "Fleet tier: health-checked failover, retry/hedging, conservation",
        body,
    )
}

/// Builds the artifact: 2 cluster schedules × 4 governors.
pub fn fleet(scale: Scale) -> FigureReport {
    render(&sweep(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_windows_fit_both_scales_with_a_recovery_tail() {
        for scale in [Scale::Quick, Scale::Full] {
            let (servers, _, warmup, duration) = geometry(scale);
            let end = SimTime::ZERO + warmup + duration;
            for (label, plan) in plans() {
                plan.validate(servers).expect("plan must validate");
                for spec in &plan.specs {
                    assert!(
                        spec.scope.start >= SimTime::ZERO + warmup,
                        "{label}: fault starts inside warm-up"
                    );
                    assert!(spec.scope.end <= end, "{label}: no recovery tail");
                }
            }
        }
    }

    #[test]
    fn chaos_schedule_composes_distinct_cluster_kinds() {
        let plan = plans().pop().expect("chaos plan").1;
        let mut kinds: Vec<&'static str> = plan.specs.iter().map(|s| s.kind.label()).collect();
        let n = kinds.len();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(kinds.len() >= 5, "chaos composes ≥5 distinct kinds");
        assert!(n > kinds.len(), "staggered crashes repeat ServerCrash");
    }

    #[test]
    fn configs_validate_at_both_scales() {
        for scale in [Scale::Quick, Scale::Full] {
            for (_, plan) in plans() {
                for (label, gov) in fleet_governors() {
                    config(scale, gov, plan.clone())
                        .validate()
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                }
            }
        }
    }
}
