//! `energy` (beyond-paper artifact): per-component and per-mode
//! energy attribution plus the governor decision flight recorder.
//!
//! The paper's energy story (Fig 8, Fig 13, Fig 15) reports one RAPL
//! scalar per cell. This artifact opens that scalar up: every joule
//! the power model emits is decomposed into the typed components of
//! [`simcore::EnergyComponent`] — busy execution per P-state bucket,
//! IRQ/softirq handling, C0 idle burn, C-state wake transitions,
//! C1/C6 residency, and package uncore. The decomposition is
//! *integer-exact*: the conservation audit asserts that the
//! attributed microjoules equal the measured microjoules for every
//! core, so the columns below always sum to the measured total.
//!
//! The second table crosses the same energy with napisim's
//! packet-processing mode: joules burned while the NAPI context was
//! in interrupt mode vs polling mode vs paying C-state wake
//! transitions — the energy-side view of the paper's §3 mechanism
//! (mode transitions are where latency *and* power go).
//!
//! The third table summarizes each run's governor flight recorder:
//! how often the governor acted, what triggered it, and which way it
//! moved the operating point.

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, RunResult, Scale};
use crate::supervisor::Supervisor;
use crate::thresholds;
use simcore::{DecisionTrigger, EnergyComponent};
use workload::{AppKind, LoadLevel, LoadSpec};

const GOV_LABELS: [&str; 4] = ["ondemand", "performance", "NCAP", "NMAP"];

fn governors(app: AppKind) -> [GovernorKind; 4] {
    [
        GovernorKind::Ondemand,
        GovernorKind::Performance,
        GovernorKind::Ncap(thresholds::ncap_threshold(app)),
        GovernorKind::Nmap(thresholds::nmap_config(app)),
    ]
}

/// The sweep's cell list: governor-major, memcached only — the same
/// grid as the latency `breakdown` artifact so the two tables can be
/// read side by side. Public so the determinism suite can replay the
/// exact cells serially.
pub fn configs(scale: Scale) -> Vec<RunConfig> {
    let app = AppKind::Memcached;
    let mut configs = Vec::new();
    for gov in governors(app) {
        for level in LoadLevel::all() {
            configs.push(RunConfig::new(
                app,
                LoadSpec::preset(app, level),
                gov,
                scale,
            ));
        }
    }
    configs
}

/// Runs the sweep under `sup`.
pub fn sweep(scale: Scale, sup: &Supervisor) -> Vec<RunResult> {
    sup.run_many(configs(scale))
}

fn index(gov: usize, level: usize) -> usize {
    gov * 3 + level
}

/// Microjoules-per-request cell: `uj / requests`, `-` when the run
/// served nothing.
fn fmt_uj_per_req(uj: u64, requests: u64) -> String {
    if requests == 0 {
        "-".to_string()
    } else {
        format!("{:.1}", uj as f64 / requests as f64)
    }
}

/// Renders the artifact from a completed sweep (separated from
/// [`energy`] so the golden test can drive it at a fixed scale).
pub fn render(results: &[RunResult]) -> FigureReport {
    let mut body = String::new();
    let attributed = results.iter().any(|r| r.energy.measured_total_uj() > 0);

    body.push_str(
        "\n[memcached — microjoules per request by energy component; components \
         sum to the measured package energy exactly (audit-checked)]\n",
    );
    if !attributed {
        body.push_str(
            "\n(energy attribution absent: rebuild with `--features obs` to \
             populate the component columns)\n",
        );
    }
    let mut headers = vec!["gov/load"];
    headers.extend(EnergyComponent::ALL.iter().map(|c| c.label()));
    headers.push("total");
    headers.push("energy-J");
    let mut rows = Vec::new();
    for (gi, gov) in GOV_LABELS.iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let r = &results[index(gi, li)];
            let mut row = vec![format!("{gov}/{level}")];
            for component in EnergyComponent::ALL {
                row.push(fmt_uj_per_req(r.energy.component_uj(component), r.received));
            }
            row.push(fmt_uj_per_req(r.energy.measured_total_uj(), r.received));
            row.push(format!("{:.3}", r.energy_j));
            rows.push(row);
        }
    }
    body.push_str(&report::table(&headers, rows));

    body.push_str(
        "\n[the same core energy split by packet-processing mode; the three \
         buckets partition the cores' measured energy exactly]\n",
    );
    let mode_headers = [
        "gov/load",
        "intr-uJ/req",
        "poll-uJ/req",
        "trans-uJ/req",
        "intr-share",
        "poll-share",
        "trans-share",
    ];
    let mut mode_rows = Vec::new();
    for (gi, gov) in GOV_LABELS.iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let r = &results[index(gi, li)];
            let m = &r.energy.modes;
            let total = m.total_uj();
            let share = |uj: u64| {
                if total == 0 {
                    "-".to_string()
                } else {
                    report::fmt_pct(uj as f64 / total as f64)
                }
            };
            mode_rows.push(vec![
                format!("{gov}/{level}"),
                fmt_uj_per_req(m.interrupt_uj, r.received),
                fmt_uj_per_req(m.polling_uj, r.received),
                fmt_uj_per_req(m.transition_uj, r.received),
                share(m.interrupt_uj),
                share(m.polling_uj),
                share(m.transition_uj),
            ]);
        }
    }
    body.push_str(&report::table(&mode_headers, mode_rows));

    body.push_str(
        "\n[governor flight recorder — decision counts, direction, and what \
         triggered each decision]\n",
    );
    let mut fr_headers = vec!["gov/load", "decisions", "raises", "lowers", "evicted"];
    fr_headers.extend(DecisionTrigger::ALL.iter().map(|t| t.label()));
    let mut fr_rows = Vec::new();
    for (gi, gov) in GOV_LABELS.iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let r = &results[index(gi, li)];
            let f = &r.gov_flight;
            let mut row = vec![
                format!("{gov}/{level}"),
                f.total.to_string(),
                f.raises.to_string(),
                f.lowers.to_string(),
                f.evicted.to_string(),
            ];
            for trigger in DecisionTrigger::ALL {
                row.push(f.trigger_count(trigger).to_string());
            }
            fr_rows.push(row);
        }
    }
    body.push_str(&report::table(&fr_headers, fr_rows));

    body.push_str(
        "\nReading: performance burns its joules as busy-p0 plus expensive \
         shallow idle — no P-state stalls, maximum static cost. ondemand \
         shifts busy energy into the low buckets but pays for it in \
         wake-transition and IRQ overhead as cores sleep and reheat across \
         mode flips. NMAP's poll-side residency shows up directly in the \
         polling column: energy follows the packet-processing mode, which is \
         the paper's thesis stated in joules. The flight recorder explains \
         the difference operationally — sample-triggered governors act on a \
         fixed clock while NMAP's decisions cluster on mode-transition \
         signals.\n",
    );
    FigureReport::new(
        "energy",
        "Energy attribution by component and packet-processing mode",
        body,
    )
}

/// Builds the artifact: 4 governors × 3 loads on memcached.
pub fn energy(scale: Scale, sup: &Supervisor) -> FigureReport {
    render(&sweep(scale, sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_has_all_cells() {
        let fig = energy(Scale::Quick, &Supervisor::new());
        let data_rows = fig
            .body
            .lines()
            .filter(|l| GOV_LABELS.iter().any(|g| l.starts_with(&format!("{g}/"))))
            .count();
        // 12 cells in each of the three tables.
        assert_eq!(data_rows, 36);
        assert!(fig.body.contains("flight recorder"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn components_conserve_when_attributed() {
        let results = sweep(Scale::Quick, &Supervisor::new());
        for r in &results {
            assert!(r.energy.measured_total_uj() > 0, "no attributed energy");
            assert_eq!(
                r.energy.measured_total_uj(),
                r.energy.attributed_total_uj(),
                "conservation: measured == attributed"
            );
            let core_total: u64 = r.energy.cores.iter().map(|c| c.measured_uj).sum();
            assert_eq!(
                r.energy.modes.total_uj(),
                core_total,
                "modes partition core energy"
            );
            assert_eq!(r.energy.rapl_clamps, 0, "power integral stayed monotone");
            assert!(r.gov_flight.total > 0 || r.governor == "performance");
        }
        let fig = render(&results);
        assert!(!fig.body.contains("energy attribution absent"));
    }
}
