//! Beyond-paper extensions:
//!
//! * `extra-online` — NMAP with **online threshold adaptation**
//!   (§4.2's future work): no offline profiling step, thresholds
//!   self-calibrate in production. Compared against offline-profiled
//!   NMAP across all loads and under the Fig 16 varying-load
//!   workload.
//! * `extra-schedutil` — the modern kernel default `schedutil`
//!   governor: faster than ondemand (1 ms effective rate limit) but
//!   still utilization-driven, so still blind to burst fronts.

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, Scale};
use crate::supervisor::Supervisor;
use crate::thresholds;
use workload::{AppKind, LoadLevel, LoadSpec};

/// NMAP-online vs offline-profiled NMAP.
pub fn online_adaptation(scale: Scale, sup: &Supervisor) -> FigureReport {
    let mut configs = Vec::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let offline = GovernorKind::Nmap(thresholds::nmap_config(app));
        for level in LoadLevel::all() {
            let load = LoadSpec::preset(app, level);
            configs.push(RunConfig::new(app, load, offline, scale));
            configs.push(RunConfig::new(app, load, GovernorKind::NmapOnline, scale));
            configs.push(RunConfig::new(app, load, GovernorKind::Performance, scale));
        }
    }
    let results = sup.run_many(configs);
    let mut rows = Vec::new();
    for (ai, app) in [AppKind::Memcached, AppKind::Nginx].iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let base = (ai * 3 + li) * 3;
            let perf_energy = results[base + 2].energy_j;
            for slot in 0..2 {
                let r = &results[base + slot];
                rows.push(vec![
                    format!("{app}/{level}"),
                    r.governor.clone(),
                    report::fmt_dur(r.p99),
                    report::fmt_pct(r.frac_above_slo),
                    report::fmt_norm(r.energy_j, perf_energy),
                    if r.meets_slo() {
                        "meets".into()
                    } else {
                        "VIOLATES".into()
                    },
                ]);
            }
        }
    }
    let mut body = report::table(
        &[
            "workload",
            "governor",
            "p99",
            "over_slo",
            "energy_vs_perf",
            "slo",
        ],
        rows,
    );
    body.push_str(
        "\nExpected: NMAP-online tracks the offline-profiled NMAP closely at every \
         load — the adaptation converges onto thresholds equivalent to the §4.2 \
         profiling — while requiring no per-application offline step.\n",
    );
    FigureReport::new(
        "extra-online",
        "Beyond-paper: online threshold adaptation vs offline profiling",
        body,
    )
}

/// schedutil vs ondemand vs NMAP.
pub fn schedutil(scale: Scale, sup: &Supervisor) -> FigureReport {
    let mut configs = Vec::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let nmap = GovernorKind::Nmap(thresholds::nmap_config(app));
        for level in LoadLevel::all() {
            let load = LoadSpec::preset(app, level);
            for gov in [GovernorKind::Ondemand, GovernorKind::Schedutil, nmap] {
                configs.push(RunConfig::new(app, load, gov, scale));
            }
        }
    }
    let results = sup.run_many(configs);
    let mut rows = Vec::new();
    for (ai, app) in [AppKind::Memcached, AppKind::Nginx].iter().enumerate() {
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let base = (ai * 3 + li) * 3;
            for slot in 0..3 {
                let r = &results[base + slot];
                rows.push(vec![
                    format!("{app}/{level}"),
                    r.governor.clone(),
                    report::fmt_dur(r.p99),
                    report::fmt_pct(r.frac_above_slo),
                    format!("{:.1}W", r.avg_power_w),
                    if r.meets_slo() {
                        "meets".into()
                    } else {
                        "VIOLATES".into()
                    },
                ]);
            }
        }
    }
    let mut body = report::table(
        &["workload", "governor", "p99", "over_slo", "power", "slo"],
        rows,
    );
    body.push_str(
        "\nExpected: schedutil's 1 ms rate limit shrinks ondemand's burst lag but the \
         governor remains reactive-by-utilization; NMAP's event-driven boost still \
         wins the tail at the highest loads.\n",
    );
    FigureReport::new(
        "extra-schedutil",
        "Beyond-paper: the modern schedutil governor vs NMAP",
        body,
    )
}

/// Both extension studies.
pub fn all(scale: Scale, sup: &Supervisor) -> Vec<FigureReport> {
    vec![online_adaptation(scale, sup), schedutil(scale, sup)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_nmap_meets_slo_like_offline() {
        let rep = online_adaptation(Scale::Quick, &Supervisor::new());
        let violations = rep
            .body
            .lines()
            .filter(|l| l.contains("NMAP-online") && l.contains("VIOLATES"))
            .count();
        assert_eq!(
            violations, 0,
            "NMAP-online must meet every SLO:\n{}",
            rep.body
        );
    }

    #[test]
    fn schedutil_report_covers_all_cells() {
        let rep = schedutil(Scale::Quick, &Supervisor::new());
        let rows = rep
            .body
            .lines()
            .filter(|l| {
                l.contains(" schedutil ") && (l.contains("meets") || l.contains("VIOLATES"))
            })
            .count();
        assert_eq!(rows, 6, "2 apps × 3 loads");
    }
}
