//! Sleep-state figures (§5.2): Fig 7 (CC6 entries vs packet modes)
//! and Fig 8 (latency-load curve + energy across sleep policies).

use crate::report::{self, FigureReport};
use crate::runner::{run, GovernorKind, RunConfig, Scale, SleepKind};
use crate::supervisor::Supervisor;
use simcore::{SimDuration, SimTime};
use workload::{AppKind, LoadLevel, LoadSpec};

/// Fig 7: when the processor enters CC6 relative to packet-processing
/// activity, for memcached at low (30K) and high (750K) load, under
/// the performance governor with the menu sleep policy.
pub fn fig7(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for level in [LoadLevel::Low, LoadLevel::High] {
        let load = LoadSpec::preset(AppKind::Memcached, level);
        let r = run(
            RunConfig::new(AppKind::Memcached, load, GovernorKind::Performance, scale)
                .with_traces(),
        );
        let t = r
            .traces
            .as_ref()
            .expect("trace-collecting runs always carry traces");
        let start = t.measure_start;
        let window = SimDuration::from_millis(120);
        let bin = SimDuration::from_millis(2);
        let nbins = (window / bin) as usize;
        let mut cc6 = vec![0u64; nbins];
        let mut intr = vec![0u64; nbins];
        let mut poll = vec![0u64; nbins];
        let idx = |tt: SimTime| -> Option<usize> {
            let off = tt.saturating_since(start);
            (tt >= start && off < window).then(|| (off / bin) as usize)
        };
        for &(tt, st) in &t.cstates_core0 {
            if st == cpusim::CState::C6 {
                if let Some(i) = idx(tt) {
                    cc6[i] += 1;
                }
            }
        }
        for &(tt, n) in &t.intr_batches_core0 {
            if let Some(i) = idx(tt) {
                intr[i] += n;
            }
        }
        for &(tt, n) in &t.poll_batches_core0 {
            if let Some(i) = idx(tt) {
                poll[i] += n;
            }
        }
        body.push_str(&format!(
            "\n[memcached @ {level} load, performance + menu — core 0, 2 ms bins]\n"
        ));
        let rows: Vec<Vec<String>> = (0..nbins)
            .map(|i| {
                vec![
                    format!("{}", i * 2),
                    cc6[i].to_string(),
                    intr[i].to_string(),
                    poll[i].to_string(),
                ]
            })
            .collect();
        body.push_str(&report::table(
            &["ms", "cc6_entries", "intr_pkts", "poll_pkts"],
            rows,
        ));
        let total_cc6: u64 = cc6.iter().sum();
        body.push_str(&format!("total CC6 entries in window: {total_cc6}\n"));
    }
    body.push_str(
        "\nPaper shape: CC6 entries cluster in idle gaps and the early burst; once the \
         core processes packets intensively mid-burst it stops entering deep sleep.\n",
    );
    FigureReport::new("fig7", "CC6 entries vs packet processing (memcached)", body)
}

/// Fig 8: P99 latency-load curve and total energy for the three sleep
/// policies under the performance governor (memcached; energy
/// normalized to menu).
pub fn fig8(scale: Scale, sup: &Supervisor) -> FigureReport {
    let loads = [
        30_000.0, 150_000.0, 290_000.0, 450_000.0, 600_000.0, 750_000.0,
    ];
    // Burstiness interpolated across the preset ladder.
    let duty_for = |rps: f64| -> f64 {
        let (lo, hi) = (30_000.0, 750_000.0);
        let (dlo, dhi) = (0.25, 0.75);
        dlo + (dhi - dlo) * ((rps - lo) / (hi - lo)).clamp(0.0, 1.0)
    };
    let mut configs = Vec::new();
    for &rps in &loads {
        for sleep in SleepKind::all() {
            let load = LoadSpec::custom(rps, SimDuration::from_millis(100), duty_for(rps), 0.3);
            configs.push(
                RunConfig::new(AppKind::Memcached, load, GovernorKind::Performance, scale)
                    .with_sleep(sleep),
            );
        }
    }
    let results = sup.run_many(configs);
    let mut rows = Vec::new();
    let mut energy_totals = [0.0f64; 3];
    for (i, &rps) in loads.iter().enumerate() {
        let cell = |j: usize| &results[i * 3 + j];
        rows.push(vec![
            format!("{}K", (rps / 1000.0) as u64),
            report::fmt_dur(cell(0).p99),
            report::fmt_dur(cell(1).p99),
            report::fmt_dur(cell(2).p99),
        ]);
        for (j, total) in energy_totals.iter_mut().enumerate() {
            *total += cell(j).energy_j;
        }
    }
    let mut body = String::from("\nP99 latency by load (performance governor):\n");
    body.push_str(&report::table(
        &["load_rps", "menu", "disable", "c6only"],
        rows,
    ));
    body.push_str("\nTotal energy across the sweep, normalized to menu:\n");
    let menu = energy_totals[0];
    body.push_str(&report::table(
        &["policy", "energy_norm"],
        vec![
            vec!["menu".into(), "1.000x".into()],
            vec!["disable".into(), report::fmt_norm(energy_totals[1], menu)],
            vec!["c6only".into(), report::fmt_norm(energy_totals[2], menu)],
        ],
    ));
    body.push_str(
        "\nPaper shape: the three policies are indistinguishable on P99 (wake-up is \
         tens of µs vs a 1 ms SLO), while disable costs +53.2% energy and c6only \
         saves 10.3% vs menu on their testbed.\n",
    );
    FigureReport::new(
        "fig8",
        "Latency-load curve and energy by sleep policy",
        body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_orders_sleep_policy_energy() {
        let rep = fig8(Scale::Quick, &Supervisor::new());
        // Extract the normalized energies.
        let grab = |name: &str| -> f64 {
            rep.body
                .lines()
                .find(|l| l.trim_start().starts_with(name) && l.contains('x'))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.trim_end_matches('x').parse().ok())
                .expect("norm row")
        };
        let disable = grab("disable");
        let c6only = grab("c6only");
        assert!(
            disable > 1.1,
            "disable must cost notably more than menu ({disable})"
        );
        assert!(c6only < 1.0, "c6only must save energy vs menu ({c6only})");
    }

    #[test]
    fn fig7_counts_cc6_entries_at_low_load() {
        let rep = fig7(Scale::Quick);
        assert!(rep.body.contains("cc6_entries"));
        let totals: Vec<u64> = rep
            .body
            .lines()
            .filter(|l| l.starts_with("total CC6 entries"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert_eq!(totals.len(), 2);
        assert!(totals[0] > 0, "low load must reach CC6");
    }
}
