//! `chaos` (beyond-paper artifact): the chaos soak — every governor
//! under composed fault schedules.
//!
//! Three deterministic [`FaultPlan`]s stress a different layer each:
//!
//! * **net** — wire loss, lost IRQs, a clamped Rx ring, an ITR
//!   override, and an incast burst;
//! * **kernel** — missed ksoftirqd wakes, a clamped poll budget,
//!   NAPI-signal starvation then stale replays, a stuck-masked IRQ
//!   vector, and spurious IRQs;
//! * **power** — DVFS write-latency spikes, thermal throttling,
//!   transient core stalls, a load spike, and connection churn.
//!
//! Every run self-audits its conservation ledger (with `--features
//! audit`), so the table below is only printed for runs whose
//! accounting identities — including the explicit
//! `PacketsFaultDropped` ledger — balanced. The recovery columns join
//! each fault window with the SLO watchdog's violation episodes:
//! time-to-recover per governor, the operational robustness metric.
//!
//! All fault windows close by 620 ms, well before even the quick-scale
//! run ends, so the drain tail shows which governors re-converge and
//! which stay wedged.

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, RunResult, Scale};
use crate::supervisor::Supervisor;
use nmap::NmapConfig;
use simcore::{FaultKind, FaultPlan, FaultScope, SimDuration, SimTime};
use workload::{AppKind, LoadSpec};

/// Every governor the repo implements, with a report label. Thresholds
/// are pinned (the same values the golden fixtures use) rather than
/// profiled: the soak's moderate load must still cross NMAP's NI
/// threshold so the degradation machinery has a mode to degrade from,
/// and a profiling pre-run would double the sweep's cost.
pub fn all_governors(_app: AppKind) -> Vec<(&'static str, GovernorKind)> {
    vec![
        ("performance", GovernorKind::Performance),
        ("powersave", GovernorKind::Powersave),
        ("userspace7", GovernorKind::Userspace(7)),
        ("ondemand", GovernorKind::Ondemand),
        ("conservative", GovernorKind::Conservative),
        ("schedutil", GovernorKind::Schedutil),
        ("intel_pwrsave", GovernorKind::IntelPowersave),
        ("nmap_simpl", GovernorKind::NmapSimpl),
        ("nmap", GovernorKind::Nmap(NmapConfig::new(32, 1.0))),
        ("nmap_online", GovernorKind::NmapOnline),
        ("ncap", GovernorKind::Ncap(50_000.0)),
        ("ncap_menu", GovernorKind::NcapMenu(50_000.0)),
        ("parties", GovernorKind::Parties),
    ]
}

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

fn win(start: u64, end: u64) -> FaultScope {
    FaultScope::window(ms(start), ms(end))
}

/// The three composed schedules. Windows sit inside `[250 ms, 620 ms)`
/// so they fit the quick-scale run (200 ms warm-up + 800 ms measured)
/// with a ≥380 ms fault-free drain tail for recovery.
pub fn plans() -> Vec<(&'static str, FaultPlan)> {
    let net = FaultPlan::new()
        .with_seed(11)
        .inject(FaultKind::WireDrop { prob: 0.05 }, win(250, 600))
        .inject(FaultKind::IrqLoss { prob: 0.10 }, win(300, 550))
        .inject(FaultKind::RxRingClamp { capacity: 64 }, win(350, 500))
        .inject(
            FaultKind::ItrOverride {
                itr: SimDuration::from_micros(200),
            },
            win(300, 500),
        )
        .inject(FaultKind::IncastBurst { requests: 300 }, win(400, 401));
    let kernel = FaultPlan::new()
        .with_seed(22)
        .inject(
            FaultKind::MissedKsoftirqdWake {
                delay: SimDuration::from_micros(200),
                prob: 0.30,
            },
            win(250, 600),
        )
        .inject(FaultKind::PollBudgetClamp { budget: 8 }, win(300, 550))
        // Complete signal starvation for 100 ms (dead notification
        // channel), then a stuck notification path that claims
        // mid-burst polling every 500 µs for 180 ms: the replays drive
        // cores into Network-Intensive mode during idle gaps with no
        // real work behind them, which NMAP's degradation watchdog
        // must detect (stale-window trigger), fall back from, and
        // hysteretically recover from once real signals resume.
        .inject(FaultKind::NapiSignalLoss { prob: 1.0 }, win(250, 350))
        .inject(
            FaultKind::NapiSignalStuck {
                period: SimDuration::from_micros(500),
            },
            win(440, 620),
        )
        .inject(FaultKind::StuckIrqMask, win(350, 400).on_core(2))
        .inject(
            FaultKind::SpuriousIrq {
                period: SimDuration::from_micros(100),
            },
            win(300, 500).on_core(1),
        );
    let power = FaultPlan::new()
        .with_seed(33)
        .inject(
            FaultKind::DvfsLatencySpike {
                extra: SimDuration::from_micros(500),
            },
            win(250, 600),
        )
        .inject(FaultKind::ThermalThrottle { floor: 6 }, win(300, 500))
        .inject(
            FaultKind::CoreStall {
                stall: SimDuration::from_micros(50),
            },
            win(350, 450).on_core(0),
        )
        .inject(FaultKind::LoadSpike { factor: 1.5 }, win(250, 450))
        .inject(FaultKind::ConnectionChurn { shift: 3 }, win(400, 401));
    vec![("net", net), ("kernel", kernel), ("power", power)]
}

/// A moderate steady load: enough traffic that every fault window has
/// packets to bite, light enough that the soak stays CI-sized.
fn chaos_load() -> LoadSpec {
    LoadSpec::custom(30_000.0, SimDuration::from_millis(100), 0.4, 0.3)
}

/// The sweep: plan-major, 3 schedules × 13 governors.
pub fn sweep(scale: Scale, sup: &Supervisor) -> Vec<RunResult> {
    let app = AppKind::Memcached;
    let mut configs = Vec::new();
    for (_, plan) in plans() {
        for (_, gov) in all_governors(app) {
            configs.push(
                RunConfig::new(app, chaos_load(), gov, scale)
                    .with_seed(7)
                    .with_fault_plan(plan.clone()),
            );
        }
    }
    sup.run_many(configs)
}

fn fmt_recovery_ns(ns: u64) -> String {
    if ns == 0 {
        "-".into()
    } else {
        report::fmt_dur(SimDuration::from_nanos(ns))
    }
}

/// Renders the artifact from a completed sweep (separated from
/// [`chaos`] so the golden test can drive it at a fixed scale).
pub fn render(results: &[RunResult]) -> FigureReport {
    let mut body = String::new();
    let governors = all_governors(AppKind::Memcached);
    let injected = results.iter().any(|r| r.faults.total() > 0);
    if !injected {
        body.push_str(
            "\n(fault injection inert: rebuild with `--features fault` to \
             arm the schedules)\n",
        );
    }
    for (pi, (plan_label, plan)) in plans().iter().enumerate() {
        let kinds: Vec<&'static str> = plan.specs.iter().map(|s| s.kind.label()).collect();
        body.push_str(&format!("\n[{plan_label} chaos — {}]\n", kinds.join(", ")));
        let headers = [
            "governor",
            "sent",
            "recv",
            "fault-drop",
            "nic-drop",
            "p99",
            "faults",
            "degr",
            "recov",
            "episodes",
            "mean-slo-recover",
            "max-slo-recover",
        ];
        let mut rows = Vec::new();
        for (gi, (gov_label, _)) in governors.iter().enumerate() {
            let r = &results[pi * governors.len() + gi];
            let rec = &r.fault_recovery;
            rows.push(vec![
                (*gov_label).to_string(),
                r.sent.to_string(),
                r.received.to_string(),
                r.faults.wire_dropped().to_string(),
                r.rx_dropped.to_string(),
                report::fmt_dur(r.p99),
                r.faults.total().to_string(),
                r.degradation.degradations.to_string(),
                r.degradation.recoveries.to_string(),
                format!("{}/{}", rec.recovered, rec.attributed),
                fmt_recovery_ns(rec.mean_recovery_ns),
                fmt_recovery_ns(rec.max_recovery_ns),
            ]);
        }
        body.push_str(&report::table(&headers, rows));
    }
    body.push_str(
        "\nEvery row passed its conservation audit: requests sent equal \
         requests delivered plus explicitly accounted fault and NIC drops \
         plus in-flight tail — no governor wedges into silent loss. \
         `degr`/`recov` count NMAP's graceful-degradation engagements \
         (utilization fallback under NAPI-signal starvation) and its \
         hysteretic re-engagements; `episodes` shows SLO-violation \
         episodes recovered vs attributed to a fault window, and the \
         recovery columns give the fault-onset → SLO-recovery time.\n",
    );
    FigureReport::new(
        "chaos",
        "Chaos soak: all governors under composed fault schedules",
        body,
    )
}

/// Builds the artifact: 3 composed fault schedules × 13 governors.
pub fn chaos(scale: Scale, sup: &Supervisor) -> FigureReport {
    render(&sweep(scale, sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_fit_the_quick_run_with_a_drain_tail() {
        for (label, plan) in plans() {
            assert!(!plan.is_empty(), "{label}: empty plan");
            assert!(plan.seed.is_some(), "{label}: plans pin their own seed");
            for spec in &plan.specs {
                assert!(spec.scope.start >= ms(250), "{label}: starts in warm-up");
                assert!(spec.scope.end <= ms(620), "{label}: no drain tail");
            }
        }
    }

    #[test]
    fn schedules_compose_distinct_fault_kinds() {
        for (label, plan) in plans() {
            let mut kinds: Vec<&'static str> = plan.specs.iter().map(|s| s.kind.label()).collect();
            let n = kinds.len();
            kinds.sort_unstable();
            kinds.dedup();
            assert!(n >= 5, "{label}: composed schedules stack ≥5 faults");
            assert_eq!(kinds.len(), n, "{label}: duplicate fault kind");
        }
    }
}
