//! Fig 12 / Fig 13 (§6.2): the conventional-governor comparison —
//! P99 latency and energy for {intel_powersave, ondemand,
//! performance, NMAP-simpl, NMAP} × {menu, disable, c6only} ×
//! {low, medium, high} × {memcached, nginx}. Energy is normalized to
//! performance+menu per (app, load) cell, as in the paper.

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, RunResult, Scale, SleepKind};
use crate::supervisor::Supervisor;
use crate::thresholds;
use workload::{AppKind, LoadLevel, LoadSpec};

const GOV_LABELS: [&str; 5] = [
    "intel_powersave",
    "ondemand",
    "performance",
    "NMAP-simpl",
    "NMAP",
];

fn governors(app: AppKind) -> [GovernorKind; 5] {
    [
        GovernorKind::IntelPowersave,
        GovernorKind::Ondemand,
        GovernorKind::Performance,
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(thresholds::nmap_config(app)),
    ]
}

/// The full sweep, in a deterministic order:
/// app → load → sleep → governor.
fn sweep(scale: Scale, sup: &Supervisor) -> Vec<RunResult> {
    let mut configs = Vec::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let govs = governors(app);
        for level in LoadLevel::all() {
            let load = LoadSpec::preset(app, level);
            for sleep in SleepKind::all() {
                for gov in govs {
                    configs.push(RunConfig::new(app, load, gov, scale).with_sleep(sleep));
                }
            }
        }
    }
    sup.run_many(configs)
}

fn index(app: usize, level: usize, sleep: usize, gov: usize) -> usize {
    ((app * 3 + level) * 3 + sleep) * 5 + gov
}

/// Builds both figures from one sweep.
pub fn fig12_13(scale: Scale, sup: &Supervisor) -> (FigureReport, FigureReport) {
    let results = sweep(scale, sup);
    let apps = [AppKind::Memcached, AppKind::Nginx];
    let mut p99_body = String::new();
    let mut energy_body = String::new();
    for (ai, app) in apps.iter().enumerate() {
        let slo = results[index(ai, 0, 0, 0)].slo;
        p99_body.push_str(&format!(
            "\n[{app} — P99 per cell; SLO {} — '*' marks a violation]\n",
            report::fmt_dur(slo)
        ));
        energy_body.push_str(&format!(
            "\n[{app} — energy normalized to performance+menu at the same load]\n"
        ));
        let mut p99_rows = Vec::new();
        let mut energy_rows = Vec::new();
        for (li, level) in LoadLevel::all().iter().enumerate() {
            // Baseline: performance (gov index 2) + menu (sleep 0).
            let baseline = results[index(ai, li, 0, 2)].energy_j;
            for (si, sleep) in SleepKind::all().iter().enumerate() {
                let mut p99_row = vec![format!("{level}/{}", sleep.label())];
                let mut energy_row = vec![format!("{level}/{}", sleep.label())];
                for gi in 0..5 {
                    let r = &results[index(ai, li, si, gi)];
                    let mark = if r.meets_slo() { "" } else { "*" };
                    p99_row.push(format!("{}{mark}", report::fmt_dur(r.p99)));
                    energy_row.push(report::fmt_norm(r.energy_j, baseline));
                }
                p99_rows.push(p99_row);
                energy_rows.push(energy_row);
            }
        }
        let mut headers = vec!["load/sleep"];
        headers.extend(GOV_LABELS);
        p99_body.push_str(&report::table(&headers, p99_rows));
        energy_body.push_str(&report::table(&headers, energy_rows));
    }
    p99_body.push_str(
        "\nPaper shape: performance always meets the SLO; ondemand and \
         intel_powersave violate it at medium and high load (except intel_powersave \
         with `disable`, which pins P0 because CC0 residency reads 100%); NMAP meets \
         it everywhere; NMAP-simpl fails only at the highest load. Sleep policy \
         barely moves P99.\n",
    );
    energy_body.push_str(
        "\nPaper shape: NMAP cuts energy vs performance by ~36%/31%/9% (memcached \
         low/medium/high) and ~30%/31%/29% (nginx); c6only is the cheapest sleep \
         policy, disable the most expensive.\n",
    );
    (
        FigureReport::new(
            "fig12",
            "P99 latency across governors and sleep policies",
            p99_body,
        ),
        FigureReport::new(
            "fig13",
            "Energy across governors and sleep policies",
            energy_body,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_all_cells_and_key_shapes() {
        let (p99, energy) = fig12_13(Scale::Quick, &Supervisor::new());
        // 2 apps × 9 rows each + headers.
        let data_rows = p99
            .body
            .lines()
            .filter(|l| l.starts_with("low/") || l.starts_with("medium/") || l.starts_with("high/"))
            .count();
        assert_eq!(data_rows, 18, "9 rows per app");
        assert!(
            energy.body.contains("1.000x"),
            "baseline normalizes to itself"
        );
        // performance must never carry a violation mark: find its column.
        for line in p99.body.lines() {
            if line.starts_with("high/menu") || line.starts_with("medium/menu") {
                let cells: Vec<&str> = line.split_whitespace().collect();
                // columns: label, intel, ondemand, performance, simpl, nmap
                assert!(!cells[3].ends_with('*'), "performance violated SLO: {line}");
                assert!(!cells[5].ends_with('*'), "NMAP violated SLO: {line}");
            }
        }
    }

    #[test]
    fn ondemand_violates_at_high_memcached() {
        let (p99, _) = fig12_13(Scale::Quick, &Supervisor::new());
        let mem_section: String = p99.body.split("[nginx").next().unwrap().to_string();
        let line = mem_section
            .lines()
            .find(|l| l.starts_with("high/menu"))
            .expect("high/menu row");
        let cells: Vec<&str> = line.split_whitespace().collect();
        assert!(
            cells[2].ends_with('*'),
            "ondemand must violate at high: {line}"
        );
    }
}
