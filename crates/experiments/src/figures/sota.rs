//! Fig 14 / Fig 15 (§6.3): comparison with the state of the art —
//! NCAP-menu, NCAP, NMAP-simpl, NMAP. P99 normalized to the SLO,
//! energy normalized to performance+menu. All runs use the menu
//! sleep policy (NCAP's own variant gates it during bursts).

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, RunResult, Scale};
use crate::supervisor::Supervisor;
use crate::thresholds;
use workload::{AppKind, LoadLevel, LoadSpec};

const LABELS: [&str; 4] = ["NCAP-menu", "NCAP", "NMAP-simpl", "NMAP"];

fn governors(app: AppKind) -> [GovernorKind; 4] {
    let ncap_th = thresholds::ncap_threshold(app);
    [
        GovernorKind::NcapMenu(ncap_th),
        GovernorKind::Ncap(ncap_th),
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(thresholds::nmap_config(app)),
    ]
}

fn sweep(scale: Scale, sup: &Supervisor) -> Vec<RunResult> {
    let mut configs = Vec::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let govs = governors(app);
        for level in LoadLevel::all() {
            let load = LoadSpec::preset(app, level);
            // Baseline first, then the four contenders.
            configs.push(RunConfig::new(app, load, GovernorKind::Performance, scale));
            for gov in govs {
                configs.push(RunConfig::new(app, load, gov, scale));
            }
        }
    }
    sup.run_many(configs)
}

fn index(app: usize, level: usize, slot: usize) -> usize {
    (app * 3 + level) * 5 + slot
}

/// Builds both figures from one sweep.
pub fn fig14_15(scale: Scale, sup: &Supervisor) -> (FigureReport, FigureReport) {
    let results = sweep(scale, sup);
    let mut p99_body = String::new();
    let mut energy_body = String::new();
    for (ai, app) in [AppKind::Memcached, AppKind::Nginx].iter().enumerate() {
        p99_body.push_str(&format!(
            "\n[{app} — P99 normalized to the SLO ('*' = violation)]\n"
        ));
        energy_body.push_str(&format!(
            "\n[{app} — energy normalized to performance+menu]\n"
        ));
        let mut p99_rows = Vec::new();
        let mut energy_rows = Vec::new();
        for (li, level) in LoadLevel::all().iter().enumerate() {
            let baseline = results[index(ai, li, 0)].energy_j;
            let mut p99_row = vec![level.to_string()];
            let mut energy_row = vec![level.to_string()];
            for slot in 1..=4 {
                let r = &results[index(ai, li, slot)];
                let mark = if r.meets_slo() { "" } else { "*" };
                p99_row.push(format!("{:.2}{mark}", r.p99_norm_slo()));
                energy_row.push(report::fmt_norm(r.energy_j, baseline));
            }
            p99_rows.push(p99_row);
            energy_rows.push(energy_row);
        }
        let mut headers = vec!["load"];
        headers.extend(LABELS);
        p99_body.push_str(&report::table(&headers, p99_rows));
        energy_body.push_str(&report::table(&headers, energy_rows));
    }
    p99_body.push_str(
        "\nPaper shape: NCAP and NCAP-menu are indistinguishable (the processor \
         rarely sleeps mid-burst anyway); NCAP and NMAP meet the SLO at every load; \
         NMAP-simpl fails at high load.\n",
    );
    energy_body.push_str(
        "\nPaper shape: NMAP undercuts NCAP's energy at every load — by 4.2-9% \
         (memcached) and 11-14.7% (nginx) on their testbed — because per-core DVFS \
         lets unaffected cores stay slow while NCAP boosts the whole chip.\n",
    );
    (
        FigureReport::new(
            "fig14",
            "P99 vs state-of-the-art power management",
            p99_body,
        ),
        FigureReport::new(
            "fig15",
            "Energy vs state-of-the-art power management",
            energy_body,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmap_beats_ncap_energy() {
        let (_p99, energy) = fig14_15(Scale::Quick, &Supervisor::new());
        // For every load row, NMAP's normalized energy ≤ NCAP's.
        let mut checked = 0;
        for line in energy.body.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 5 && (cells[0] == "low" || cells[0] == "medium" || cells[0] == "high")
            {
                let ncap: f64 = cells[2].trim_end_matches('x').parse().unwrap();
                let nmap: f64 = cells[4].trim_end_matches('x').parse().unwrap();
                // At low load NCAP's tuned threshold never trips, so it
                // degenerates to ondemand and the two roughly tie; the
                // per-core advantage bites at medium/high.
                let slack = if cells[0] == "low" { 1.08 } else { 1.02 };
                assert!(
                    nmap <= ncap * slack,
                    "NMAP ({nmap}) must not exceed NCAP ({ncap}) beyond {slack}: {line}"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 6, "both apps × three loads");
    }

    #[test]
    fn ncap_meets_slo_everywhere() {
        let (p99, _) = fig14_15(Scale::Quick, &Supervisor::new());
        for line in p99.body.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 5 && (cells[0] == "low" || cells[0] == "medium" || cells[0] == "high")
            {
                assert!(!cells[2].ends_with('*'), "NCAP violated: {line}");
                assert!(!cells[4].ends_with('*'), "NMAP violated: {line}");
            }
        }
    }
}
