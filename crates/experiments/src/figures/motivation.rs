//! Motivation figures (§3): Fig 2 (NAPI mode timeline under
//! ondemand), Fig 3 (per-request latency scatter), Fig 4 (latency
//! CDF) — ondemand vs performance, both applications at high load.

use crate::report::{self, FigureReport};
use crate::runner::{run, GovernorKind, RunConfig, RunResult, Scale};
use simcore::{SimDuration, SimTime};
use workload::{AppKind, LoadLevel, LoadSpec};

fn traced_run(app: AppKind, governor: GovernorKind, scale: Scale) -> RunResult {
    let load = LoadSpec::preset(app, LoadLevel::High);
    run(RunConfig::new(app, load, governor, scale).with_traces())
}

/// Renders a 1-ms-binned NAPI/P-state timeline over one burst period
/// plus margins (120 ms), core 0.
pub(crate) fn render_timeline(r: &RunResult, window_ms: u64) -> String {
    let t = r.traces.as_ref().expect("timeline needs traces");
    let start = t.measure_start;
    let end = (start + SimDuration::from_millis(window_ms)).min(t.measure_end);
    let bin = SimDuration::from_millis(1);
    let nbins = (end - start).as_millis() as usize;
    let bin_of = |tt: SimTime| -> Option<usize> {
        (tt >= start && tt < end).then(|| (tt.saturating_since(start) / bin) as usize)
    };
    let mut intr = vec![0u64; nbins];
    let mut poll = vec![0u64; nbins];
    let mut wakes = vec![0u64; nbins];
    for &(tt, n) in &t.intr_batches_core0 {
        if let Some(i) = bin_of(tt) {
            intr[i] += n;
        }
    }
    for &(tt, n) in &t.poll_batches_core0 {
        if let Some(i) = bin_of(tt) {
            poll[i] += n;
        }
    }
    for &tt in &t.ksoftirqd_wakes_core0 {
        if let Some(i) = bin_of(tt) {
            wakes[i] += 1;
        }
    }
    // P-state step trace sampled at bin starts.
    let mut pstates = vec![15u8; nbins];
    {
        let mut cur = 15u8; // governors boot at the slowest state
        let mut events = t.pstates_core0.iter().peekable();
        for (i, slot) in pstates.iter_mut().enumerate() {
            let bin_start = start + bin * i as u64;
            while let Some(&&(tt, p)) = events.peek() {
                if tt <= bin_start {
                    cur = p;
                    events.next();
                } else {
                    break;
                }
            }
            *slot = cur;
        }
    }
    let rows: Vec<Vec<String>> = (0..nbins)
        .map(|i| {
            vec![
                format!("{i}"),
                format!("P{}", pstates[i]),
                intr[i].to_string(),
                poll[i].to_string(),
                if wakes[i] > 0 {
                    format!("{}x", wakes[i])
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    report::table(
        &["ms", "pstate", "intr_pkts", "poll_pkts", "ksoftirqd_wake"],
        rows,
    )
}

/// Fig 2: mode counts (interrupt vs polling), ksoftirqd wake-ups, and
/// the ondemand governor's P-state over time, per application.
pub fn fig2(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let r = traced_run(app, GovernorKind::Ondemand, scale);
        body.push_str(&format!(
            "\n[{app} @ high load, ondemand governor — core 0, first 120 ms of measurement]\n"
        ));
        body.push_str(&render_timeline(&r, 120));
        let t = r
            .traces
            .as_ref()
            .expect("trace-collecting runs always carry traces");
        let max_intr_per_ms = {
            let bins = 120usize;
            let mut v = vec![0u64; bins];
            for &(tt, n) in &t.intr_batches_core0 {
                let i =
                    (tt.saturating_since(t.measure_start) / SimDuration::from_millis(1)) as usize;
                if i < bins {
                    v[i] += n;
                }
            }
            v.into_iter().max().unwrap_or(0)
        };
        body.push_str(&format!(
            "interrupt-mode packets are capped (max {max_intr_per_ms}/ms on core 0) while \
             polling scales with the burst; ksoftirqd wakes near burst peaks.\n"
        ));
    }
    body.push_str(
        "\nPaper shape: interrupt-mode packets cap out (152/ms memcached, 89/ms nginx) \
         while polling grows with load; ondemand raises V/F only mid/late burst.\n",
    );
    FigureReport::new(
        "fig2",
        "NAPI mode transitions and ondemand P-state under bursts",
        body,
    )
}

/// Renders a per-request latency summary over a 0.5 s window, binned
/// at 25 ms (the scatter's envelope).
pub(crate) fn render_scatter(r: &RunResult, slo: SimDuration) -> String {
    let t = r.traces.as_ref().expect("scatter needs traces");
    let start = t.measure_start;
    let window = SimDuration::from_millis(500);
    let bin = SimDuration::from_millis(25);
    let nbins = (window / bin) as usize;
    let mut max_lat = vec![SimDuration::ZERO; nbins];
    let mut count = vec![0u64; nbins];
    let mut over = vec![0u64; nbins];
    for &(tt, lat) in &t.responses {
        let off = tt.saturating_since(start);
        if off >= window {
            continue;
        }
        let i = (off / bin) as usize;
        count[i] += 1;
        max_lat[i] = max_lat[i].max(lat);
        if lat > slo {
            over[i] += 1;
        }
    }
    let rows: Vec<Vec<String>> = (0..nbins)
        .map(|i| {
            vec![
                format!("{}-{}", i * 25, (i + 1) * 25),
                count[i].to_string(),
                report::fmt_dur(max_lat[i]),
                over[i].to_string(),
            ]
        })
        .collect();
    report::table(&["window_ms", "responses", "max_latency", "over_slo"], rows)
}

/// Fig 3: response latency of every request over 0.5 s, ondemand vs
/// performance.
pub fn fig3(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        for gov in [GovernorKind::Ondemand, GovernorKind::Performance] {
            let r = traced_run(app, gov, scale);
            body.push_str(&format!(
                "\n[{app} @ high load, {} — 0.5 s of responses; SLO {}]\n",
                r.governor,
                report::fmt_dur(r.slo)
            ));
            body.push_str(&render_scatter(&r, r.slo));
        }
    }
    body.push_str(
        "\nPaper shape: ondemand shows latency spikes tracking each burst; the \
         performance governor keeps every request low and flat.\n",
    );
    FigureReport::new("fig3", "Per-request response latency over 0.5 s", body)
}

/// Renders the latency CDF at fixed quantiles plus the fraction of
/// requests within the SLO (the paper's headline percentages).
pub(crate) fn render_cdf(r: &RunResult) -> String {
    let t = r.traces.as_ref().expect("cdf needs traces");
    let mut cdf: simcore::Cdf = t.responses.iter().map(|&(_, l)| l.as_nanos()).collect();
    let mut rows = Vec::new();
    for q in [0.50, 0.90, 0.95, 0.99, 0.999] {
        rows.push(vec![
            format!("p{:.1}", q * 100.0),
            report::fmt_dur(SimDuration::from_nanos(cdf.quantile(q))),
        ]);
    }
    let within = cdf.fraction_at_or_below(r.slo.as_nanos());
    rows.push(vec!["within SLO".into(), report::fmt_pct(within)]);
    report::table(&["quantile", "latency"], rows)
}

/// Fig 4: latency CDFs, ondemand vs performance.
pub fn fig4(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        for gov in [GovernorKind::Ondemand, GovernorKind::Performance] {
            let r = traced_run(app, gov, scale);
            body.push_str(&format!(
                "\n[{app} @ high load, {} — SLO {}]\n",
                r.governor,
                report::fmt_dur(r.slo)
            ));
            body.push_str(&render_cdf(&r));
        }
    }
    body.push_str(
        "\nPaper shape: ondemand leaves a substantial fraction of requests past the \
         SLO (their testbed: only 18.1% under 1 ms for memcached, 57.2% under 10 ms \
         for nginx); performance keeps ≥99.9% within it.\n",
    );
    FigureReport::new("fig4", "Latency CDF, ondemand vs performance", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_produces_timelines_for_both_apps() {
        let rep = fig2(Scale::Quick);
        assert_eq!(rep.id, "fig2");
        assert!(rep.body.contains("memcached"));
        assert!(rep.body.contains("nginx"));
        assert!(rep.body.contains("ksoftirqd_wake"));
        // 120 rows per app plus headers.
        assert!(rep.body.lines().count() > 240);
    }

    #[test]
    fn fig4_reports_slo_fractions() {
        let rep = fig4(Scale::Quick);
        assert!(rep.body.contains("within SLO"));
        assert!(rep.body.contains("p99"));
    }
}
