//! One module per paper artifact. Every function returns a
//! [`crate::report::FigureReport`] whose body is the
//! text rendering of the table/figure the paper shows.
//!
//! | id | paper artifact |
//! |---|---|
//! | `fig2` | NAPI mode counts, ksoftirqd wakes, ondemand P-state timeline |
//! | `fig3` | per-request latency over 0.5 s, ondemand vs performance |
//! | `fig4` | latency CDF, ondemand vs performance |
//! | `table1` | re-transition latency, 4 CPUs × 6 transitions |
//! | `table2` | C-state wake-up latency, 4 CPUs |
//! | `fig7` | CC6 entries vs packet modes, low & high load |
//! | `fig8` | latency-load curve + energy across sleep policies |
//! | `fig9` | NMAP timeline (as fig2 under NMAP) |
//! | `fig10` | per-request latency under NMAP |
//! | `fig11` | latency CDF under NMAP |
//! | `fig12` | P99 matrix: 5 governors × 3 sleep policies × 3 loads × 2 apps |
//! | `fig13` | energy matrix (same cells, normalized to performance+menu) |
//! | `fig14` | P99 vs state of the art (NCAP variants), normalized to SLO |
//! | `fig15` | energy vs state of the art |
//! | `fig16` | varying-load trace: NMAP vs Parties |
//! | `ablation` | NI_TH/CU_TH/timer/scope/re-transition sensitivity |
//! | `extra` | beyond-paper: online threshold adaptation, schedutil |
//! | `breakdown` | beyond-paper: latency attribution + SLO watchdog |
//! | `energy` | beyond-paper: energy attribution + governor flight recorder |
//! | `timeline` | beyond-paper: telemetry sparklines (P99/mode/power over time) |
//! | `chaos` | beyond-paper: chaos soak under composed fault schedules |
//! | `fleet` | beyond-paper: fault-tolerant fleet tier (failover, retry/hedge, conservation) |
//! | `overload` | beyond-paper: overload control vs metastable failure (admission, retry budgets, brownout) |

pub mod ablations;
pub mod breakdown;
pub mod chaos;
pub mod comparison;
pub mod energy;
pub mod extensions;
pub mod fleet;
pub mod motivation;
pub mod nmap_behavior;
pub mod overload;
pub mod sleep;
pub mod sota;
pub mod tables;
pub mod timeline;
pub mod varying;

use crate::report::FigureReport;
use crate::runner::{GovernorKind, RunConfig, Scale};
use crate::supervisor::Supervisor;
use crate::thresholds;
use workload::{AppKind, LoadLevel, LoadSpec};

/// All artifact ids in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig2",
        "fig3",
        "fig4",
        "table1",
        "table2",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "ablation",
        "extra",
        "breakdown",
        "energy",
        "timeline",
        "chaos",
        "fleet",
        "overload",
    ]
}

/// Generates the artifacts for `id` (some ids share their underlying
/// sweep and are produced together; the requested one is returned
/// along with any siblings computed for free).
///
/// Runs under an ephemeral [`Supervisor`] (no checkpoint, default
/// retry/quarantine policy); use [`generate_with`] to supply one that
/// checkpoints or budgets the sweep cells.
pub fn generate(id: &str, scale: Scale) -> Vec<FigureReport> {
    generate_with(id, scale, &Supervisor::new())
}

/// [`generate`], with every multi-cell sweep driven through `sup` —
/// cells are retried/quarantined per its policy and, when it carries a
/// checkpoint, skipped on resume. Trace-collecting single-cell figures
/// (fig2-4, fig7, fig9-11, fig16) run directly: their results embed
/// full event traces, which are never checkpointed.
pub fn generate_with(id: &str, scale: Scale, sup: &Supervisor) -> Vec<FigureReport> {
    match id {
        "fig2" => vec![motivation::fig2(scale)],
        "fig3" => vec![motivation::fig3(scale)],
        "fig4" => vec![motivation::fig4(scale)],
        "table1" => vec![tables::table1()],
        "table2" => vec![tables::table2()],
        "fig7" => vec![sleep::fig7(scale)],
        "fig8" => vec![sleep::fig8(scale, sup)],
        "fig9" => vec![nmap_behavior::fig9(scale)],
        "fig10" => vec![nmap_behavior::fig10(scale)],
        "fig11" => vec![nmap_behavior::fig11(scale)],
        "fig12" | "fig13" => {
            let (a, b) = comparison::fig12_13(scale, sup);
            vec![a, b]
        }
        "fig14" | "fig15" => {
            let (a, b) = sota::fig14_15(scale, sup);
            vec![a, b]
        }
        "fig16" => vec![varying::fig16(scale)],
        "ablation" => ablations::all(scale, sup),
        "extra" | "extra-online" | "extra-schedutil" => extensions::all(scale, sup),
        "breakdown" => vec![breakdown::breakdown(scale, sup)],
        "energy" => vec![energy::energy(scale, sup)],
        "timeline" => vec![timeline::timeline(scale, sup)],
        "chaos" => vec![chaos::chaos(scale, sup)],
        // The fleet tier has its own config/result shape and runs
        // through `cluster::run_fleet_many` directly (see the module
        // docs for why it bypasses the supervisor's checkpoint cells).
        "fleet" => vec![fleet::fleet(scale)],
        // Like `fleet`, the overload dichotomy runs its cells through
        // `cluster::run_fleet_many` directly — fleet results have
        // their own shape and never checkpoint.
        "overload" => vec![overload::overload(scale)],
        _ => Vec::new(),
    }
}

/// The single most representative simulation cell behind an artifact,
/// configured for trace collection — what `repro --trace-out` runs to
/// dump a Perfetto timeline for that figure. Pure tables (`table1`,
/// `table2`) have no underlying simulation and return `None`.
pub fn representative_cell(id: &str, scale: Scale) -> Option<RunConfig> {
    let app = AppKind::Memcached;
    let gov = match id {
        // Motivation and conventional-governor matrices: the paper's
        // problem case is ondemand.
        "fig2" | "fig3" | "fig4" | "fig12" | "fig13" => GovernorKind::Ondemand,
        // The sleep-policy study holds the governor at performance.
        "fig7" | "fig8" => GovernorKind::Performance,
        // The state-of-the-art comparison centers on NCAP.
        "fig14" | "fig15" => GovernorKind::Ncap(thresholds::ncap_threshold(app)),
        // NMAP behavior, varying load, ablations, extensions, the
        // attribution breakdown, and the energy decomposition all
        // showcase NMAP itself.
        // The chaos soak's representative cell is NMAP under the
        // kernel-layer schedule — the one that exercises its
        // graceful-degradation state machine.
        "fig9" | "fig10" | "fig11" | "fig16" | "ablation" | "extra" | "breakdown" | "energy"
        | "timeline" | "chaos" => GovernorKind::Nmap(thresholds::nmap_config(app)),
        _ => return None,
    };
    let load = LoadSpec::preset(app, LoadLevel::High);
    let mut cfg = RunConfig::new(app, load, gov, scale).with_traces();
    if id == "chaos" {
        let plan = chaos::plans().swap_remove(1).1;
        cfg = cfg.with_fault_plan(plan);
    }
    Some(cfg)
}
