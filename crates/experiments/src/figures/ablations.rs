//! Ablations of NMAP's design choices (DESIGN.md §4):
//!
//! * `ablation-ni` — NI_TH sensitivity: how the threshold trades
//!   early boosting (energy) against detection (tail latency);
//! * `ablation-timer` — the monitor/decision timer interval
//!   (§6.1 uses 10 ms);
//! * `ablation-scope` — per-core vs chip-wide DVFS (the advantage
//!   NMAP claims over NCAP);
//! * `ablation-retrans` — sensitivity to the re-transition latency
//!   (desktop-class ~30 µs vs server-class ~520 µs DVFS).

use crate::report::{self, FigureReport};
use crate::runner::{GovernorKind, RunConfig, RunResult, Scale};
use crate::supervisor::Supervisor;
use crate::thresholds;
use cpusim::dvfs::RetransitionModel;
use cpusim::{DvfsScope, ProcessorProfile};
use nmap::NmapConfig;
use simcore::SimDuration;
use workload::{AppKind, LoadLevel, LoadSpec};

fn result_row(label: String, r: &RunResult, baseline_energy: f64) -> Vec<String> {
    vec![
        label,
        report::fmt_dur(r.p99),
        report::fmt_pct(r.frac_above_slo),
        report::fmt_norm(r.energy_j, baseline_energy),
        r.dvfs_transitions.to_string(),
    ]
}

const HEADERS: [&str; 5] = ["variant", "p99", "over_slo", "energy_norm", "transitions"];

/// NI_TH sensitivity at memcached high load.
pub fn ni_threshold(scale: Scale, sup: &Supervisor) -> FigureReport {
    let base = thresholds::nmap_config(AppKind::Memcached);
    let load = LoadSpec::preset(AppKind::Memcached, LoadLevel::High);
    let factors = [0.25, 0.5, 1.0, 4.0, 16.0, 64.0];
    let configs: Vec<RunConfig> = factors
        .iter()
        .map(|&f| {
            let ni = ((base.ni_threshold as f64 * f).round() as u64).max(1);
            let cfg = NmapConfig::new(ni, base.cu_threshold);
            RunConfig::new(AppKind::Memcached, load, GovernorKind::Nmap(cfg), scale)
        })
        .chain(std::iter::once(RunConfig::new(
            AppKind::Memcached,
            load,
            GovernorKind::Performance,
            scale,
        )))
        .collect();
    let results = sup.run_many(configs);
    let baseline = results.last().map_or(0.0, |r| r.energy_j);
    let rows = factors
        .iter()
        .zip(&results)
        .map(|(&f, r)| {
            let ni = ((base.ni_threshold as f64 * f).round() as u64).max(1);
            result_row(format!("NI_TH={ni} ({f}x)"), r, baseline)
        })
        .collect();
    let mut body = report::table(&HEADERS, rows);
    body.push_str(
        "\nExpected: small NI_TH boosts aggressively (near-performance energy, lowest \
         tail); very large NI_TH stops detecting bursts and the tail degrades toward \
         ondemand's.\n",
    );
    FigureReport::new(
        "ablation-ni",
        "NI_TH sensitivity (memcached, high load)",
        body,
    )
}

/// Monitor timer interval sweep at memcached medium load.
pub fn timer_interval(scale: Scale, sup: &Supervisor) -> FigureReport {
    let base = thresholds::nmap_config(AppKind::Memcached);
    let load = LoadSpec::preset(AppKind::Memcached, LoadLevel::Medium);
    let intervals_ms = [1u64, 5, 10, 50, 100];
    let configs: Vec<RunConfig> = intervals_ms
        .iter()
        .map(|&ms| {
            let cfg = base.with_timer(SimDuration::from_millis(ms));
            RunConfig::new(AppKind::Memcached, load, GovernorKind::Nmap(cfg), scale)
        })
        .chain(std::iter::once(RunConfig::new(
            AppKind::Memcached,
            load,
            GovernorKind::Performance,
            scale,
        )))
        .collect();
    let results = sup.run_many(configs);
    let baseline = results.last().map_or(0.0, |r| r.energy_j);
    let rows = intervals_ms
        .iter()
        .zip(&results)
        .map(|(&ms, r)| result_row(format!("timer={ms}ms"), r, baseline))
        .collect();
    let mut body = report::table(&HEADERS, rows);
    body.push_str(
        "\nExpected: the boost path is timer-independent (notifications are \
         event-driven), so the tail barely moves; a slower timer delays the fallback \
         to CPU-utilization mode and costs energy.\n",
    );
    FigureReport::new(
        "ablation-timer",
        "Monitor timer interval (memcached, medium load)",
        body,
    )
}

/// Per-core vs chip-wide DVFS, across memcached loads.
pub fn dvfs_scope(scale: Scale, sup: &Supervisor) -> FigureReport {
    let base = thresholds::nmap_config(AppKind::Memcached);
    let mut configs = Vec::new();
    for level in LoadLevel::all() {
        let load = LoadSpec::preset(AppKind::Memcached, level);
        for scope in [DvfsScope::PerCore, DvfsScope::ChipWide] {
            configs.push(
                RunConfig::new(AppKind::Memcached, load, GovernorKind::Nmap(base), scale)
                    .with_scope(scope),
            );
        }
        configs.push(RunConfig::new(
            AppKind::Memcached,
            load,
            GovernorKind::Performance,
            scale,
        ));
    }
    let results = sup.run_many(configs);
    let mut rows = Vec::new();
    for (li, level) in LoadLevel::all().iter().enumerate() {
        let baseline = results[li * 3 + 2].energy_j;
        rows.push(result_row(
            format!("{level}/per-core"),
            &results[li * 3],
            baseline,
        ));
        rows.push(result_row(
            format!("{level}/chip-wide"),
            &results[li * 3 + 1],
            baseline,
        ));
    }
    let mut body = report::table(&HEADERS, rows);
    body.push_str(
        "\nExpected: chip-wide NMAP boosts all eight cores whenever one detects a \
         burst, costing extra energy — the per-core advantage NMAP claims over \
         NCAP (§6.3).\n",
    );
    FigureReport::new(
        "ablation-scope",
        "Per-core vs chip-wide DVFS (memcached)",
        body,
    )
}

/// Re-transition latency sensitivity: the Gold 6134 with its stock
/// ~520 µs re-transition vs a hypothetical desktop-class (~30 µs)
/// and a zero-cost DVFS.
pub fn retransition(scale: Scale, sup: &Supervisor) -> FigureReport {
    let base_cfg = thresholds::nmap_config(AppKind::Memcached);
    let load = LoadSpec::preset(AppKind::Memcached, LoadLevel::High);
    let stock = ProcessorProfile::xeon_gold_6134();
    let desktop_like = ProcessorProfile {
        retransition: RetransitionModel::desktop(20.6, 6.6, 33.9, 11.2, 3.5),
        settle_window: SimDuration::from_micros(30),
        ..ProcessorProfile::xeon_gold_6134()
    };
    let instant = ProcessorProfile {
        retransition: RetransitionModel::desktop(0.01, 0.0, 0.01, 0.0, 0.0),
        settle_window: SimDuration::ZERO,
        base_transition: SimDuration::from_nanos(100),
        ..ProcessorProfile::xeon_gold_6134()
    };
    let variants = [
        ("server (~520us retrans)", stock),
        ("desktop (~30us retrans)", desktop_like),
        ("ideal (instant DVFS)", instant),
    ];
    let mut configs: Vec<RunConfig> = variants
        .iter()
        .map(|(_, p)| {
            let mut c = RunConfig::new(
                AppKind::Memcached,
                load,
                GovernorKind::Nmap(base_cfg),
                scale,
            );
            c.profile_override = Some(p.clone());
            c
        })
        .collect();
    configs.push(RunConfig::new(
        AppKind::Memcached,
        load,
        GovernorKind::Performance,
        scale,
    ));
    let results = sup.run_many(configs);
    let baseline = results.last().map_or(0.0, |r| r.energy_j);
    let rows = variants
        .iter()
        .zip(&results)
        .map(|((label, _), r)| result_row(label.to_string(), r, baseline))
        .collect();
    let mut body = report::table(&HEADERS, rows);
    body.push_str(
        "\nExpected: NMAP tolerates the server-class re-transition because it changes \
         V/F once per burst edge, not per request — the §5.1 argument for why \
         coarser-than-per-request DVFS is the practical design point.\n",
    );
    FigureReport::new(
        "ablation-retrans",
        "Re-transition latency sensitivity (memcached, high load)",
        body,
    )
}

/// All ablations.
pub fn all(scale: Scale, sup: &Supervisor) -> Vec<FigureReport> {
    vec![
        ni_threshold(scale, sup),
        timer_interval(scale, sup),
        dvfs_scope(scale, sup),
        retransition(scale, sup),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_ablation_shows_per_core_saves_energy() {
        let rep = dvfs_scope(Scale::Quick, &Supervisor::new());
        let grab = |label: &str| -> f64 {
            rep.body
                .lines()
                .find(|l| l.starts_with(label))
                .and_then(|l| {
                    l.split_whitespace()
                        .find(|c| c.ends_with('x'))
                        .and_then(|v| v.trim_end_matches('x').parse().ok())
                })
                .expect("row")
        };
        // At low load the chip-wide boost penalty is largest.
        let per_core = grab("low/per-core");
        let chip = grab("low/chip-wide");
        assert!(
            chip >= per_core,
            "chip-wide ({chip}) must cost at least per-core ({per_core})"
        );
    }

    #[test]
    fn timer_ablation_runs_all_intervals() {
        let rep = timer_interval(Scale::Quick, &Supervisor::new());
        for ms in [1, 5, 10, 50, 100] {
            assert!(rep.body.contains(&format!("timer={ms}ms")));
        }
    }
}
