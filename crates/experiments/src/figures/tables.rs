//! Table 1 (re-transition latency) and Table 2 (C-state wake-up
//! latency) — the §5 hardware characterization, reproduced on the
//! DVFS/C-state models of all four processor profiles.

use crate::report::{self, FigureReport};
use cpusim::dvfs::{CompletionResult, CoreDvfs, TransitionOutcome};
use cpusim::{CState, PState, ProcessorProfile};
use simcore::{RngStream, RunningStats, SimTime};

/// One Table 1 measurement: alternate between `a` and `b` back-to-back
/// `trials` times, recording the observed latency per direction —
/// the paper's "update the ctrl register repetitively, then measure
/// the time until the update is actually reflected".
fn measure_retransition(
    profile: &ProcessorProfile,
    a: PState,
    b: PState,
    trials: u32,
    rng: &mut RngStream,
) -> (RunningStats, RunningStats) {
    let mut dvfs = CoreDvfs::new(a);
    let mut now = SimTime::ZERO;
    let mut ab = RunningStats::new();
    let mut ba = RunningStats::new();
    // A throwaway first transition so the settle window is "warm",
    // as in a repetitive-update loop.
    for i in 0..(2 * trials + 1) {
        let target = if dvfs.current() == a { b } else { a };
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = dvfs.request(target, now, profile, rng)
        else {
            // A quiescent domain accepts a request instantly; the
            // micro-benchmark never leaves one in flight.
            unreachable!("quiescent domain must start immediately");
        };
        let latency = completes_at - now;
        if i > 0 {
            if target == b {
                ab.push(latency.as_micros_f64());
            } else {
                ba.push(latency.as_micros_f64());
            }
        }
        match dvfs.complete(token, completes_at, profile, rng) {
            CompletionResult::Settled { .. } => {}
            other => unreachable!("unexpected completion {other:?}"),
        }
        now = completes_at; // immediately re-request: re-transition
    }
    (ab, ba)
}

/// Table 1: re-transition latency over 10 000 experiments for the six
/// canonical transitions on each of the four processors.
pub fn table1() -> FigureReport {
    let trials = 10_000;
    let mut rows = Vec::new();
    for profile in ProcessorProfile::all_characterized() {
        let mut rng = RngStream::derive(7, "table1", profile.cores as u64);
        let pmax = PState::P0;
        let pmax1 = PState::new(1);
        let pmin = profile.pstates.slowest();
        let pmin1 = PState::new(pmin.index() - 1);
        // (label pair, from, to) in the table's order.
        let pairs = [
            ("Pmax -> Pmax-1", "Pmax-1 -> Pmax", pmax, pmax1),
            ("Pmax -> Pmin", "Pmin -> Pmax", pmax, pmin),
            ("Pmin+1 -> Pmin", "Pmin -> Pmin+1", pmin1, pmin),
        ];
        for (label_down, label_up, from, to) in pairs {
            let (down, up) = measure_retransition(&profile, from, to, trials, &mut rng);
            rows.push(vec![
                profile.name.to_string(),
                label_down.to_string(),
                format!("{:.1}", down.mean()),
                format!("{:.1}", down.sample_stdev()),
            ]);
            rows.push(vec![
                profile.name.to_string(),
                label_up.to_string(),
                format!("{:.1}", up.mean()),
                format!("{:.1}", up.sample_stdev()),
            ]);
        }
    }
    let mut body = report::table(&["processor", "transition", "mean_us", "stdev_us"], rows);
    body.push_str(
        "\nPaper shape: desktop parts take 21-51 us (2-5x the ACPI-advertised 10 us), \
         raising V/F costs more than lowering, distance adds latency; the Xeon server \
         parts sit near a flat ~516-528 us (about 50x the ACPI figure).\n",
    );
    FigureReport::new("table1", "Re-transition latency (10,000 experiments)", body)
}

/// Table 2: wake-up time from CC6 and CC1 over 100 experiments on
/// each processor.
pub fn table2() -> FigureReport {
    let trials = 100;
    let mut rows = Vec::new();
    for profile in ProcessorProfile::all_characterized() {
        let mut rng = RngStream::derive(11, "table2", profile.cores as u64);
        for state in [CState::C6, CState::C1] {
            let mut stats = RunningStats::new();
            for _ in 0..trials {
                stats.push(
                    profile
                        .cstate_latencies
                        .sample_wake(state, &mut rng)
                        .as_micros_f64(),
                );
            }
            rows.push(vec![
                profile.name.to_string(),
                format!("{state}->CC0"),
                format!("{:.2}", stats.mean()),
                format!("{:.2}", stats.sample_stdev()),
            ]);
        }
    }
    let mut body = report::table(&["processor", "transition", "mean_us", "stdev_us"], rows);
    body.push_str(&format!(
        "\nCC6 additionally flushes private caches; refilling costs up to {} \
         (E5-2620v4: {}) after wake-up (section 5.2).\n",
        report::fmt_dur(ProcessorProfile::xeon_gold_6134().cc6_cache_refill),
        report::fmt_dur(ProcessorProfile::xeon_e5_2620v4().cc6_cache_refill),
    ));
    body.push_str(
        "Paper shape: ~27-28 us from CC6, sub-microsecond from CC1, on every part — \
         negligible against millisecond-scale SLOs.\n",
    );
    FigureReport::new("table2", "C-state wake-up time (100 experiments)", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_server_magnitudes() {
        let rep = table1();
        assert!(rep.body.contains("Intel Xeon Gold 6134"));
        // The Gold 6134 rows must be ~520 µs scale.
        let gold_row = rep
            .body
            .lines()
            .find(|l| l.contains("Gold 6134") && l.contains("Pmin -> Pmax"))
            .expect("gold Pmin->Pmax row");
        let mean: f64 = gold_row
            .split_whitespace()
            .rev()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!((500.0..560.0).contains(&mean), "gold mean {mean}");
    }

    #[test]
    fn table1_reproduces_desktop_asymmetry() {
        let rep = table1();
        let find = |pat: &str| -> f64 {
            rep.body
                .lines()
                .find(|l| l.contains("i7-6700") && l.contains(pat))
                .and_then(|l| l.split_whitespace().rev().nth(1).unwrap().parse().ok())
                .expect("row")
        };
        let down_small = find("Pmax -> Pmax-1");
        let up_small = find("Pmax-1 -> Pmax");
        let up_large = find("Pmin -> Pmax");
        assert!((15.0..30.0).contains(&down_small), "down {down_small}");
        assert!(up_small > down_small, "up must exceed down");
        assert!(up_large > up_small, "distance must add latency");
    }

    #[test]
    fn table2_magnitudes() {
        let rep = table2();
        let gold_c6 = rep
            .body
            .lines()
            .find(|l| l.contains("Gold 6134") && l.contains("CC6"))
            .expect("row");
        let mean: f64 = gold_c6
            .split_whitespace()
            .rev()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!((25.0..30.0).contains(&mean), "CC6 wake {mean}");
    }
}
