//! NMAP behaviour figures (§6.2): Fig 9 (NMAP timeline — the Fig 2
//! counterpart), Fig 10 (per-request latency under NMAP), Fig 11
//! (latency CDF under NMAP).

use crate::figures::motivation::{render_cdf, render_scatter, render_timeline};
use crate::report::{self, FigureReport};
use crate::runner::{run, GovernorKind, RunConfig, RunResult, Scale};
use crate::thresholds;
use workload::{AppKind, LoadLevel, LoadSpec};

fn nmap_run(app: AppKind, scale: Scale) -> RunResult {
    let cfg = thresholds::nmap_config(app);
    let load = LoadSpec::preset(app, LoadLevel::High);
    run(RunConfig::new(app, load, GovernorKind::Nmap(cfg), scale).with_traces())
}

/// Fig 9: ksoftirqd wake-ups, NMAP's P-state, and per-mode packet
/// counts over time.
pub fn fig9(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let r = nmap_run(app, scale);
        body.push_str(&format!(
            "\n[{app} @ high load, NMAP (NI_TH={}, CU_TH={:.2}) — core 0, first 120 ms]\n",
            thresholds::nmap_config(app).ni_threshold,
            thresholds::nmap_config(app).cu_threshold,
        ));
        body.push_str(&render_timeline(&r, 120));
    }
    body.push_str(
        "\nPaper shape: unlike ondemand (fig2), NMAP maximizes V/F at the early part \
         of each burst and lowers it promptly as the polling-to-interrupt ratio \
         falls, instead of reacting mid-burst.\n",
    );
    FigureReport::new(
        "fig9",
        "NMAP timeline: P-state, NAPI modes, ksoftirqd",
        body,
    )
}

/// Fig 10: response latency of every request over 0.5 s with NMAP.
pub fn fig10(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let r = nmap_run(app, scale);
        body.push_str(&format!(
            "\n[{app} @ high load, NMAP — 0.5 s of responses; SLO {}]\n",
            report::fmt_dur(r.slo)
        ));
        body.push_str(&render_scatter(&r, r.slo));
    }
    body.push_str(
        "\nPaper shape: the burst-tracking latency spikes of ondemand (fig3) are gone; \
         every window stays near the SLO floor.\n",
    );
    FigureReport::new("fig10", "Per-request response latency under NMAP", body)
}

/// Fig 11: latency CDF with NMAP; the paper reports only 0.92%
/// (memcached) and 0.06% (nginx) of packets past the SLO.
pub fn fig11(scale: Scale) -> FigureReport {
    let mut body = String::new();
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let r = nmap_run(app, scale);
        body.push_str(&format!(
            "\n[{app} @ high load, NMAP — SLO {}]\n",
            report::fmt_dur(r.slo)
        ));
        body.push_str(&render_cdf(&r));
        body.push_str(&format!(
            "fraction above SLO: {}\n",
            report::fmt_pct(r.frac_above_slo)
        ));
    }
    body.push_str(
        "\nPaper shape: ≤1% of requests beyond the SLO for both applications \
         (their testbed: 0.92% and 0.06%).\n",
    );
    FigureReport::new("fig11", "Latency CDF under NMAP", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_meets_slo_for_both_apps() {
        let rep = fig11(Scale::Quick);
        let fracs: Vec<f64> = rep
            .body
            .lines()
            .filter(|l| l.starts_with("fraction above SLO"))
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(fracs.len(), 2);
        for f in fracs {
            assert!(f <= 1.0, "NMAP must keep violations ≤1% (got {f}%)");
        }
    }

    #[test]
    fn fig9_shows_early_boost() {
        let rep = fig9(Scale::Quick);
        assert!(rep.body.contains("NI_TH="));
        assert!(rep.body.contains("P0"), "NMAP must reach P0 during bursts");
    }
}
