//! CSV export of run traces — for plotting the timeline figures with
//! external tools (no plotting dependencies in this workspace).
//!
//! ```no_run
//! use experiments::{run, GovernorKind, RunConfig, Scale};
//! use workload::{AppKind, LoadLevel, LoadSpec};
//!
//! let cfg = RunConfig::new(
//!     AppKind::Memcached,
//!     LoadSpec::preset(AppKind::Memcached, LoadLevel::High),
//!     GovernorKind::Ondemand,
//!     Scale::Quick,
//! )
//! .with_traces();
//! let result = run(cfg);
//! experiments::export::write_traces_csv(&result, "out_dir").unwrap();
//! ```

use crate::runner::RunResult;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the per-response latency series as CSV
/// (`recv_time_us,latency_us`).
pub fn responses_csv(result: &RunResult) -> String {
    let mut out = String::from("recv_time_us,latency_us\n");
    if let Some(t) = &result.traces {
        for &(tt, lat) in &t.responses {
            let _ = writeln!(
                out,
                "{:.3},{:.3}",
                tt.as_nanos() as f64 / 1e3,
                lat.as_micros_f64()
            );
        }
    }
    out
}

/// Renders core 0's P-state step trace as CSV (`time_us,pstate`).
pub fn pstates_csv(result: &RunResult) -> String {
    let mut out = String::from("time_us,pstate\n");
    if let Some(t) = &result.traces {
        for &(tt, p) in &t.pstates_core0 {
            let _ = writeln!(out, "{:.3},{p}", tt.as_nanos() as f64 / 1e3);
        }
    }
    out
}

/// Renders core 0's NAPI activity as CSV
/// (`time_us,kind,value` with kind ∈ {intr, poll, ksoftirqd_wake}).
pub fn napi_csv(result: &RunResult) -> String {
    let mut out = String::from("time_us,kind,value\n");
    if let Some(t) = &result.traces {
        for &(tt, n) in &t.intr_batches_core0 {
            let _ = writeln!(out, "{:.3},intr,{n}", tt.as_nanos() as f64 / 1e3);
        }
        for &(tt, n) in &t.poll_batches_core0 {
            let _ = writeln!(out, "{:.3},poll,{n}", tt.as_nanos() as f64 / 1e3);
        }
        for &tt in &t.ksoftirqd_wakes_core0 {
            let _ = writeln!(out, "{:.3},ksoftirqd_wake,1", tt.as_nanos() as f64 / 1e3);
        }
    }
    out
}

/// Writes the three trace CSVs (`responses.csv`, `pstates.csv`,
/// `napi.csv`) into `dir`, creating it if needed.
///
/// # Errors
///
/// Returns any filesystem error; fails with `InvalidInput` if the run
/// was made without [`with_traces`](crate::RunConfig::with_traces).
pub fn write_traces_csv(result: &RunResult, dir: impl AsRef<Path>) -> io::Result<()> {
    if result.traces.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run was executed without trace collection",
        ));
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("responses.csv"), responses_csv(result))?;
    std::fs::write(dir.join("pstates.csv"), pstates_csv(result))?;
    std::fs::write(dir.join("napi.csv"), napi_csv(result))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, GovernorKind, RunConfig, Scale};
    use simcore::SimDuration;
    use workload::{AppKind, LoadSpec};

    fn traced_result() -> RunResult {
        run(RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(150),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(30_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                GovernorKind::Ondemand,
                Scale::Quick,
            )
        }
        .with_traces())
    }

    #[test]
    fn csv_has_headers_and_rows() {
        let r = traced_result();
        let resp = responses_csv(&r);
        assert!(resp.starts_with("recv_time_us,latency_us\n"));
        assert!(resp.lines().count() > 100, "responses present");
        let napi = napi_csv(&r);
        assert!(napi.contains(",intr,"));
        let ps = pstates_csv(&r);
        assert!(ps.lines().count() >= 2, "at least one P-state change");
        // Every data line has the right arity.
        for line in resp.lines().skip(1).take(50) {
            assert_eq!(line.split(',').count(), 2, "bad row {line}");
        }
    }

    #[test]
    fn write_traces_creates_files() {
        let r = traced_result();
        let dir = std::env::temp_dir().join("nmap_repro_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_traces_csv(&r, &dir).unwrap();
        for f in ["responses.csv", "pstates.csv", "napi.csv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn untraced_run_is_rejected() {
        let r = run(RunConfig {
            warmup: SimDuration::from_millis(10),
            duration: SimDuration::from_millis(20),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(10_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                GovernorKind::Performance,
                Scale::Quick,
            )
        });
        let err = write_traces_csv(&r, std::env::temp_dir().join("never")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
