//! CSV export of run traces — for plotting the timeline figures with
//! external tools (no plotting dependencies in this workspace).
//!
//! ```no_run
//! use experiments::{run, GovernorKind, RunConfig, Scale};
//! use workload::{AppKind, LoadLevel, LoadSpec};
//!
//! let cfg = RunConfig::new(
//!     AppKind::Memcached,
//!     LoadSpec::preset(AppKind::Memcached, LoadLevel::High),
//!     GovernorKind::Ondemand,
//!     Scale::Quick,
//! )
//! .with_traces();
//! let result = run(cfg);
//! experiments::export::write_traces_csv(&result, "out_dir").unwrap();
//! ```

use crate::runner::RunResult;
use simcore::{TraceBuffer, TraceCategory, TraceKind};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the per-response latency series as CSV
/// (`recv_time_us,latency_us`).
pub fn responses_csv(result: &RunResult) -> String {
    let mut out = String::from("recv_time_us,latency_us\n");
    if let Some(t) = &result.traces {
        for &(tt, lat) in &t.responses {
            let _ = writeln!(
                out,
                "{:.3},{:.3}",
                tt.as_nanos() as f64 / 1e3,
                lat.as_micros_f64()
            );
        }
    }
    out
}

/// Renders core 0's P-state step trace as CSV (`time_us,pstate`).
pub fn pstates_csv(result: &RunResult) -> String {
    let mut out = String::from("time_us,pstate\n");
    if let Some(t) = &result.traces {
        for &(tt, p) in &t.pstates_core0 {
            let _ = writeln!(out, "{:.3},{p}", tt.as_nanos() as f64 / 1e3);
        }
    }
    out
}

/// Renders core 0's NAPI activity as CSV
/// (`time_us,kind,value` with kind ∈ {intr, poll, ksoftirqd_wake}).
pub fn napi_csv(result: &RunResult) -> String {
    let mut out = String::from("time_us,kind,value\n");
    if let Some(t) = &result.traces {
        for &(tt, n) in &t.intr_batches_core0 {
            let _ = writeln!(out, "{:.3},intr,{n}", tt.as_nanos() as f64 / 1e3);
        }
        for &(tt, n) in &t.poll_batches_core0 {
            let _ = writeln!(out, "{:.3},poll,{n}", tt.as_nanos() as f64 / 1e3);
        }
        for &tt in &t.ksoftirqd_wakes_core0 {
            let _ = writeln!(out, "{:.3},ksoftirqd_wake,1", tt.as_nanos() as f64 / 1e3);
        }
    }
    out
}

/// Writes the three trace CSVs (`responses.csv`, `pstates.csv`,
/// `napi.csv`) into `dir`, creating it if needed.
///
/// # Errors
///
/// Returns any filesystem error; fails with `InvalidInput` if the run
/// was made without [`with_traces`](crate::RunConfig::with_traces).
pub fn write_traces_csv(result: &RunResult, dir: impl AsRef<Path>) -> io::Result<()> {
    if result.traces.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run was executed without trace collection",
        ));
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("responses.csv"), responses_csv(result))?;
    std::fs::write(dir.join("pstates.csv"), pstates_csv(result))?;
    std::fs::write(dir.join("napi.csv"), napi_csv(result))?;
    Ok(())
}

fn json_escape(s: &str) -> String {
    // Trace names are static identifiers; escape defensively anyway.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn category_index(cat: TraceCategory) -> usize {
    TraceCategory::ALL
        .iter()
        .position(|&c| c == cat)
        .expect("category in ALL")
}

/// Renders a structured trace buffer as Chrome Trace Event JSON,
/// loadable in <https://ui.perfetto.dev> (or `chrome://tracing`).
///
/// Layout: one process per core (`pid = core + 1`, named `core N`) and
/// one thread per trace category within it (`tid = category index +
/// 1`, named after the category label), so every core shows its
/// `irq` / `napi-mode` / `pstate` / … tracks stacked together.
/// Events are emitted in stable time order; the numeric event
/// argument lands in `args.v`.
pub fn perfetto_json(trace: &TraceBuffer) -> String {
    perfetto_json_with_drops(trace, 0)
}

/// [`perfetto_json`] with additional dropped-sample counts folded
/// into `otherData.droppedEvents` — the timeline sampler's
/// decimation drops share the overflow metadata with the trace
/// buffer's own, so one number answers "is this file complete?".
pub fn perfetto_json_with_drops(trace: &TraceBuffer, extra_dropped: u64) -> String {
    let mut events: Vec<&simcore::TraceEvent> = trace.events().iter().collect();
    events.sort_by_key(|e| e.time);
    // Name the (core, category) tracks that actually carry events.
    let mut tracks: Vec<(u32, TraceCategory)> =
        events.iter().map(|e| (e.core, e.category)).collect();
    tracks.sort_by_key(|&(core, cat)| (core, category_index(cat)));
    tracks.dedup();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    let mut named_cores: Vec<u32> = Vec::new();
    for &(core, cat) in &tracks {
        let pid = core + 1;
        if named_cores.last() != Some(&core) {
            named_cores.push(core);
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"core {core}\"}}}}"
                ),
            );
        }
        let tid = category_index(cat) + 1;
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(cat.label())
            ),
        );
    }
    for e in events {
        let pid = e.core + 1;
        let tid = category_index(e.category) + 1;
        let ts = e.time.as_nanos() as f64 / 1e3;
        let name = json_escape(e.name);
        let cat = json_escape(e.category.label());
        let line = match e.kind {
            TraceKind::SpanBegin => format!(
                "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
                 \"cat\":\"{cat}\",\"name\":\"{name}\",\"args\":{{\"v\":{}}}}}",
                e.arg
            ),
            TraceKind::SpanEnd => format!(
                "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
                 \"cat\":\"{cat}\",\"name\":\"{name}\"}}"
            ),
            TraceKind::Instant => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
                 \"cat\":\"{cat}\",\"name\":\"{name}\",\"args\":{{\"v\":{}}}}}",
                e.arg
            ),
            TraceKind::Counter => format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
                 \"name\":\"{name}\",\"args\":{{\"{name}\":{}}}}}",
                e.arg
            ),
        };
        push(&mut out, line);
    }
    out.push_str("\n]");
    // A truncated trace must be detectable from the file alone:
    // record the overflow in the trace-wide metadata block.
    let dropped = trace.dropped() + extra_dropped;
    if dropped > 0 {
        let _ = write!(out, ",\"otherData\":{{\"droppedEvents\":{dropped}}}");
    }
    out.push_str("}\n");
    out
}

/// Writes the run's structured trace as Perfetto-loadable JSON at
/// `path`.
///
/// # Errors
///
/// Returns any filesystem error; fails with `InvalidInput` if the run
/// was made without [`with_traces`](crate::RunConfig::with_traces).
pub fn write_perfetto_json(result: &RunResult, path: impl AsRef<Path>) -> io::Result<()> {
    let Some(traces) = &result.traces else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run was executed without trace collection",
        ));
    };
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(
        path,
        perfetto_json_with_drops(&traces.trace, result.timeline.dropped),
    )
}

/// Writes the run's telemetry timeline as CSV at `path`
/// (`time_ns,core,<gauge columns>`, one row per core per sample).
///
/// # Errors
///
/// Returns any filesystem error; fails with `InvalidInput` if the run
/// recorded no timeline (sampling off or `obs` disabled).
pub fn write_timeline_csv(result: &RunResult, path: impl AsRef<Path>) -> io::Result<()> {
    if result.timeline.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run recorded no telemetry timeline",
        ));
    }
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, result.timeline.to_csv())
}

/// Writes the run's telemetry timeline as an OpenMetrics text
/// exposition at `path` (one `nmap_core_*` family per gauge,
/// `core="N"` labels, explicit timestamps, `# EOF` terminated) —
/// scrapeable by any Prometheus-compatible tool.
///
/// # Errors
///
/// Returns any filesystem error; fails with `InvalidInput` if the run
/// recorded no timeline (sampling off or `obs` disabled).
pub fn write_timeline_openmetrics(result: &RunResult, path: impl AsRef<Path>) -> io::Result<()> {
    if result.timeline.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run recorded no telemetry timeline",
        ));
    }
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, result.timeline.to_openmetrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, GovernorKind, RunConfig, Scale};
    use simcore::SimDuration;
    use workload::{AppKind, LoadSpec};

    fn traced_result() -> RunResult {
        run(RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(150),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(30_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                GovernorKind::Ondemand,
                Scale::Quick,
            )
        }
        .with_traces())
    }

    #[test]
    fn csv_has_headers_and_rows() {
        let r = traced_result();
        let resp = responses_csv(&r);
        assert!(resp.starts_with("recv_time_us,latency_us\n"));
        assert!(resp.lines().count() > 100, "responses present");
        let napi = napi_csv(&r);
        assert!(napi.contains(",intr,"));
        let ps = pstates_csv(&r);
        assert!(ps.lines().count() >= 2, "at least one P-state change");
        // Every data line has the right arity.
        for line in resp.lines().skip(1).take(50) {
            assert_eq!(line.split(',').count(), 2, "bad row {line}");
        }
    }

    #[test]
    fn write_traces_creates_files() {
        let r = traced_result();
        let dir = std::env::temp_dir().join("nmap_repro_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_traces_csv(&r, &dir).unwrap();
        for f in ["responses.csv", "pstates.csv", "napi.csv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn perfetto_json_emits_metadata_and_events() {
        let r = traced_result();
        let json = perfetto_json(&r.traces.as_ref().unwrap().trace);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        // Write path works and refuses untraced runs symmetrically
        // with the CSV writer.
        let path = std::env::temp_dir().join("nmap_repro_perfetto_test/trace.json");
        let _ = std::fs::remove_file(&path);
        write_perfetto_json(&r, &path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn perfetto_json_records_dropped_events() {
        use simcore::{SimTime, TraceBuffer, TraceCategory};
        let mut tb = TraceBuffer::with_capacity(1);
        tb.instant(SimTime::from_micros(1), TraceCategory::Irq, 0, "kept", 0);
        tb.instant(SimTime::from_micros(2), TraceCategory::Irq, 0, "lost", 0);
        tb.instant(SimTime::from_micros(3), TraceCategory::Irq, 0, "lost", 0);
        assert_eq!(tb.dropped(), 2);
        let json = perfetto_json(&tb);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"otherData\":{\"droppedEvents\":2}"));
        // A complete trace carries no overflow metadata.
        let mut full = TraceBuffer::with_capacity(8);
        full.instant(SimTime::from_micros(1), TraceCategory::Irq, 0, "kept", 0);
        assert!(!perfetto_json(&full).contains("otherData"));
        // Timeline decimation drops fold into the same counter.
        assert!(perfetto_json_with_drops(&full, 5).contains("\"otherData\":{\"droppedEvents\":5}"));
        assert!(perfetto_json_with_drops(&tb, 3).contains("\"otherData\":{\"droppedEvents\":5}"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn timeline_csv_and_openmetrics_write() {
        let r = traced_result();
        assert!(!r.timeline.is_empty(), "default config records a timeline");
        let dir = std::env::temp_dir().join("nmap_repro_timeline_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_timeline_csv(&r, dir.join("timeline.csv")).unwrap();
        write_timeline_openmetrics(&r, dir.join("timeline.om")).unwrap();
        let csv = std::fs::read_to_string(dir.join("timeline.csv")).unwrap();
        assert!(csv.starts_with("time_ns,core,"));
        let om = std::fs::read_to_string(dir.join("timeline.om")).unwrap();
        assert!(om.ends_with("# EOF\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn perfetto_json_is_empty_when_obs_off() {
        let r = traced_result();
        let json = perfetto_json(&r.traces.as_ref().unwrap().trace);
        assert!(!json.contains("\"ph\":\"B\""), "no spans without obs");
    }

    #[test]
    fn untraced_run_is_rejected() {
        let r = run(RunConfig {
            warmup: SimDuration::from_millis(10),
            duration: SimDuration::from_millis(20),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(10_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                GovernorKind::Performance,
                Scale::Quick,
            )
        });
        let err = write_traces_csv(&r, std::env::temp_dir().join("never")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
