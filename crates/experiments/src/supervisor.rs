//! The crash-safe sweep supervisor.
//!
//! [`Supervisor`] drives sweep cells ([`RunConfig`]s) to completion
//! under a per-cell failure policy:
//!
//! * **budget watchdog** — each attempt runs under the policy's
//!   [`StepBudget`]; a runaway cell (livelocked event chain, wedged
//!   host) aborts with [`SimError::BudgetExceeded`] instead of
//!   hanging the sweep;
//! * **retry with capped exponential backoff** — transient failures
//!   (panics, wall-clock budget aborts, accounting violations) replay
//!   the cell with its seed untouched, sleeping
//!   `base * 2^(attempt-1)` (capped) between attempts;
//! * **quarantine** — deterministic failures (invalid configs,
//!   event-count budget aborts) and cells that exhaust their retries
//!   are quarantined: the sweep completes, the cell yields a zeroed
//!   placeholder result, and the record lands in the artifact's
//!   quarantine section;
//! * **checkpoint resumability** — with a [`Checkpoint`] attached,
//!   completed cells stream to `checkpoint.jsonl` as they finish and
//!   a re-invoked sweep serves them from disk, reproducing the merged
//!   artifact byte-identically after a crash or SIGKILL.

use crate::ckpt::{Checkpoint, QuarantineRecord};
use crate::runner::{self, RunConfig, RunResult};
use simcore::{SimError, StepBudget};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Retry/backoff/budget policy for one sweep.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// Attempts per cell before quarantining (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)`.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Per-attempt step/wall-clock budget (the runaway-cell guard).
    pub budget: StepBudget,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            budget: StepBudget::unlimited(),
        }
    }
}

impl SupervisorPolicy {
    /// The backoff before retry attempt `next_attempt` (2-based: no
    /// sleep precedes the first attempt), exponential and capped.
    pub fn backoff(&self, next_attempt: u32) -> Duration {
        let doublings = next_attempt.saturating_sub(2).min(20);
        let exp = self
            .backoff_base
            .saturating_mul(2u32.saturating_pow(doublings));
        exp.min(self.backoff_cap)
    }
}

/// How one cell concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Ran to completion this invocation (after `attempts` tries).
    Completed { attempts: u32 },
    /// Served from the checkpoint; no simulation ran.
    Resumed,
    /// Quarantined this invocation (or in a previous one).
    Quarantined { error: String, attempts: u32 },
}

type CellRunner = dyn Fn(&RunConfig, &StepBudget) -> Result<RunResult, SimError> + Send + Sync;

/// The sweep supervisor. Cheap to construct; share one per sweep
/// (methods take `&self`, all mutability is internal).
pub struct Supervisor {
    policy: SupervisorPolicy,
    checkpoint: Option<Mutex<Checkpoint>>,
    runner: Box<CellRunner>,
    quarantine_log: Mutex<Vec<QuarantineRecord>>,
    resumed_cells: Mutex<usize>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("policy", &self.policy)
            .field("checkpointed", &self.checkpoint.is_some())
            .finish()
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Self::new()
    }
}

impl Supervisor {
    /// A supervisor with the default policy, no checkpoint, and the
    /// real cell runner ([`runner::try_run_budgeted`]).
    pub fn new() -> Self {
        Supervisor {
            policy: SupervisorPolicy::default(),
            checkpoint: None,
            runner: Box::new(|cfg, budget| runner::try_run_budgeted(cfg.clone(), budget)),
            quarantine_log: Mutex::new(Vec::new()),
            resumed_cells: Mutex::new(0),
        }
    }

    /// Overrides the failure policy.
    pub fn with_policy(mut self, policy: SupervisorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches (creating or resuming) the checkpoint at `path`.
    pub fn with_checkpoint(mut self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        self.checkpoint = Some(Mutex::new(Checkpoint::open(path)?));
        Ok(self)
    }

    /// Replaces the cell runner — the failure-injection seam for
    /// supervisor tests.
    pub fn with_runner(
        mut self,
        runner: impl Fn(&RunConfig, &StepBudget) -> Result<RunResult, SimError> + Send + Sync + 'static,
    ) -> Self {
        self.runner = Box::new(runner);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Cells served from the checkpoint so far.
    pub fn cells_resumed(&self) -> usize {
        *lock(&self.resumed_cells)
    }

    /// Quarantine records accumulated by this supervisor, plus any
    /// already present in the attached checkpoint, key-ascending and
    /// deduplicated.
    pub fn quarantined(&self) -> Vec<QuarantineRecord> {
        let mut records: Vec<QuarantineRecord> = lock(&self.quarantine_log).clone();
        if let Some(ck) = &self.checkpoint {
            let ck = lock(ck);
            for r in ck.quarantined() {
                records.push(r.clone());
            }
        }
        records.sort_by_key(|r| r.key);
        records.dedup_by_key(|r| r.key);
        records
    }

    /// Drives one cell to a result under the failure policy. Never
    /// panics and never hangs past the budget: the worst case is a
    /// quarantine placeholder.
    pub fn run_one(&self, cfg: RunConfig) -> RunResult {
        self.run_cell(cfg).0
    }

    /// Like [`run_one`](Self::run_one), also reporting how the cell
    /// concluded.
    pub fn run_cell(&self, cfg: RunConfig) -> (RunResult, CellOutcome) {
        if let Some(ck) = &self.checkpoint {
            let ck = lock(ck);
            if let Some(result) = ck.lookup(&cfg) {
                let result = result.clone();
                drop(ck);
                *lock(&self.resumed_cells) += 1;
                return (result, CellOutcome::Resumed);
            }
            if let Some(record) = ck.lookup_quarantine(&cfg) {
                let outcome = CellOutcome::Quarantined {
                    error: record.error.clone(),
                    attempts: record.attempts,
                };
                let record = record.clone();
                drop(ck);
                lock(&self.quarantine_log).push(record);
                return (placeholder(&cfg), outcome);
            }
        }
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        let final_error: String = loop {
            attempt += 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                (self.runner)(&cfg, &self.policy.budget)
            }));
            match outcome {
                Ok(Ok(result)) => {
                    if let Some(ck) = &self.checkpoint {
                        // A full disk mid-sweep degrades resumability,
                        // not correctness: the result is still returned.
                        let _ = lock(ck).record(&cfg, &result);
                    }
                    return (result, CellOutcome::Completed { attempts: attempt });
                }
                Ok(Err(err)) => {
                    // Deterministic failures cannot be retried away:
                    // invalid configs fail validation identically, and
                    // an event-count budget abort replays identically
                    // (virtual time is host-independent).
                    let deterministic = err.is_config()
                        || matches!(
                            err,
                            SimError::BudgetExceeded {
                                kind: simcore::BudgetKind::Events,
                                ..
                            }
                        );
                    if deterministic || attempt >= max_attempts {
                        break err.to_string();
                    }
                }
                Err(payload) => {
                    // A panicking cell is retried too (defense in
                    // depth; the library crates are lint-walled
                    // panic-free, but a sweep must survive anything).
                    if attempt >= max_attempts {
                        break panic_message(payload.as_ref());
                    }
                }
            }
            std::thread::sleep(self.policy.backoff(attempt + 1));
        };
        self.quarantine(&cfg, &final_error, attempt);
        (
            placeholder(&cfg),
            CellOutcome::Quarantined {
                error: final_error,
                attempts: attempt,
            },
        )
    }

    fn quarantine(&self, cfg: &RunConfig, error: &str, attempts: u32) {
        if let Some(ck) = &self.checkpoint {
            let _ = lock(ck).record_quarantine(cfg, error, attempts);
        }
        lock(&self.quarantine_log).push(QuarantineRecord {
            key: crate::ckpt::cell_key(cfg),
            governor: cfg.governor.label().to_string(),
            error: error.to_string(),
            attempts,
        });
    }

    /// Supervised replacement for [`runner::run_many`]: the same
    /// worker-pool fan-out and input-order preservation, but every
    /// cell goes through the failure policy, so one bad cell costs a
    /// placeholder, not the sweep.
    pub fn run_many(&self, configs: Vec<RunConfig>) -> Vec<RunResult> {
        if configs.len() <= 1 {
            return configs.into_iter().map(|c| self.run_one(c)).collect();
        }
        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4)
            .min(configs.len());
        let jobs: Mutex<VecDeque<(usize, RunConfig)>> =
            Mutex::new(configs.into_iter().enumerate().collect());
        let n = lock(&jobs).len();
        let results: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; n]);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let job = lock(&jobs).pop_front();
                    let Some((idx, cfg)) = job else { break };
                    let result = self.run_one(cfg);
                    lock(&results)[idx] = Some(result);
                });
            }
        });
        results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|r| r.expect("worker skipped a job"))
            .collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// The zeroed stand-in a quarantined cell contributes to its sweep.
/// Figure tables render its all-zero metrics as `n/a` against real
/// baselines; the quarantine section names the cell and its error.
pub fn placeholder(cfg: &RunConfig) -> RunResult {
    RunResult {
        governor: cfg.governor.label().to_string(),
        sleep: cfg.sleep.label().to_string(),
        sent: 0,
        received: 0,
        p99: simcore::SimDuration::ZERO,
        p50: simcore::SimDuration::ZERO,
        frac_above_slo: 0.0,
        slo: simcore::SimDuration::ZERO,
        energy_j: 0.0,
        duration: simcore::SimDuration::ZERO,
        avg_power_w: 0.0,
        rx_dropped: 0,
        dvfs_transitions: 0,
        c6_entries: 0,
        metrics: Default::default(),
        attrib: Default::default(),
        energy: Default::default(),
        gov_flight: Default::default(),
        watchdog: Default::default(),
        faults: Default::default(),
        degradation: Default::default(),
        fault_recovery: Default::default(),
        timeline: Default::default(),
        traces: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{GovernorKind, Scale};
    use simcore::SimDuration;
    use std::sync::atomic::{AtomicU32, Ordering};
    use workload::{AppKind, LoadSpec};

    fn tiny(seed: u64) -> RunConfig {
        RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(150),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                GovernorKind::Ondemand,
                Scale::Quick,
            )
        }
        .with_seed(seed)
    }

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..SupervisorPolicy::default()
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = SupervisorPolicy {
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(150),
            ..SupervisorPolicy::default()
        };
        assert_eq!(policy.backoff(2), Duration::from_millis(50));
        assert_eq!(policy.backoff(3), Duration::from_millis(100));
        assert_eq!(policy.backoff(4), Duration::from_millis(150), "capped");
        assert_eq!(policy.backoff(30), Duration::from_millis(150));
    }

    #[test]
    fn transient_failure_retries_with_seed_preserved() {
        let calls = AtomicU32::new(0);
        let sup = Supervisor::new()
            .with_policy(fast_policy())
            .with_runner(move |cfg, budget| {
                assert_eq!(cfg.seed, 42, "replay must preserve the seed");
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(SimError::Accounting {
                        context: "test",
                        reason: "transient".into(),
                    })
                } else {
                    runner::try_run_budgeted(cfg.clone(), budget)
                }
            });
        let (result, outcome) = sup.run_cell(tiny(42));
        assert_eq!(outcome, CellOutcome::Completed { attempts: 3 });
        assert!(result.received > 0);
        assert!(sup.quarantined().is_empty());
    }

    #[test]
    fn persistent_failure_quarantines_after_max_attempts() {
        let calls = AtomicU32::new(0);
        let sup = Supervisor::new()
            .with_policy(fast_policy())
            .with_runner(move |_, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(SimError::Accounting {
                    context: "test",
                    reason: "always broken".into(),
                })
            });
        let (result, outcome) = sup.run_cell(tiny(1));
        assert_eq!(
            outcome,
            CellOutcome::Quarantined {
                error: "accounting error in test: always broken".into(),
                attempts: 3,
            }
        );
        assert_eq!(result.received, 0, "placeholder");
        assert_eq!(result.governor, "ondemand");
        assert_eq!(sup.quarantined().len(), 1);
    }

    #[test]
    fn panicking_cell_is_caught_and_quarantined() {
        let sup = Supervisor::new()
            .with_policy(fast_policy())
            .with_runner(|_, _| panic!("cell exploded"));
        let (_, outcome) = sup.run_cell(tiny(2));
        match outcome {
            CellOutcome::Quarantined { error, attempts } => {
                assert!(error.contains("cell exploded"), "{error}");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn config_errors_quarantine_without_retry() {
        let calls = std::sync::Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let sup = Supervisor::new()
            .with_policy(fast_policy())
            .with_runner(move |cfg, budget| {
                seen.fetch_add(1, Ordering::SeqCst);
                runner::try_run_budgeted(cfg.clone(), budget)
            });
        let mut cfg = tiny(3);
        cfg.duration = SimDuration::ZERO;
        let (_, outcome) = sup.run_cell(cfg);
        assert!(matches!(
            outcome,
            CellOutcome::Quarantined { attempts: 1, .. }
        ));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no retry for configs");
    }

    #[test]
    fn event_budget_exhaustion_quarantines_without_retry() {
        let calls = std::sync::Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let sup = Supervisor::new()
            .with_policy(SupervisorPolicy {
                budget: StepBudget::unlimited().with_max_events(5_000),
                ..fast_policy()
            })
            .with_runner(move |cfg, budget| {
                seen.fetch_add(1, Ordering::SeqCst);
                runner::try_run_budgeted(cfg.clone(), budget)
            });
        let (_, outcome) = sup.run_cell(tiny(4));
        match outcome {
            CellOutcome::Quarantined { error, attempts } => {
                assert!(error.contains("event-count"), "{error}");
                assert_eq!(attempts, 1, "event budgets replay identically");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sweep_completes_around_a_quarantined_cell() {
        let sup = Supervisor::new()
            .with_policy(fast_policy())
            .with_runner(|cfg, budget| {
                if cfg.seed == 99 {
                    Err(SimError::Accounting {
                        context: "test",
                        reason: "poisoned cell".into(),
                    })
                } else {
                    runner::try_run_budgeted(cfg.clone(), budget)
                }
            });
        let results = sup.run_many(vec![tiny(1), tiny(99), tiny(5)]);
        assert_eq!(results.len(), 3, "order and length preserved");
        assert!(results[0].received > 0);
        assert_eq!(results[1].received, 0, "placeholder in position");
        assert!(results[2].received > 0);
        assert_eq!(sup.quarantined().len(), 1);
    }

    #[test]
    fn checkpoint_resume_skips_finished_cells() {
        let mut path = std::env::temp_dir();
        path.push(format!("nmap-sup-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let configs = vec![tiny(1), tiny(2), tiny(3)];
        let first = {
            let sup = Supervisor::new()
                .with_checkpoint(&path)
                .expect("checkpoint");
            sup.run_many(configs.clone())
        };
        let sup = Supervisor::new()
            .with_checkpoint(&path)
            .expect("checkpoint")
            .with_runner(|_, _| panic!("must not re-run a finished cell"));
        let second = sup.run_many(configs);
        assert_eq!(second, first, "resumed results identical");
        assert_eq!(sup.cells_resumed(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
