//! The scenario runner: build a testbed from a declarative
//! [`RunConfig`], simulate warm-up + measured window, and extract the
//! metrics the paper reports.

use appsim::{AppModel, Testbed, TestbedConfig};
use cpusim::{CState, DvfsScope, ProcessorProfile};
use governors::DegradationStats;
use simcore::fault::join_recovery;
use simcore::{
    AttribSummary, EnergySummary, EngineProfile, EventLog, FaultPlan, FaultScope, FaultStats,
    FlightSummary, MetricsSnapshot, RecoverySummary, SimDuration, SimError, SimTime, Simulator,
    StepBudget, Timeline, TimelineConfig, WatchdogReport,
};
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};
use workload::{AppKind, LoadSpec};

/// Locks a mutex, shrugging off poisoning: a panicking worker must
/// not cascade into every other thread that shares the sweep state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which processor model a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// Intel i7-6700 (desktop).
    I76700,
    /// Intel i7-7700 (desktop).
    I77700,
    /// Intel Xeon E5-2620v4 (server).
    XeonE5V4,
    /// Intel Xeon Gold 6134 (the paper's testbed; default).
    XeonGold,
}

impl ProfileKind {
    /// Materializes the profile.
    pub fn profile(self) -> ProcessorProfile {
        match self {
            ProfileKind::I76700 => ProcessorProfile::i7_6700(),
            ProfileKind::I77700 => ProcessorProfile::i7_7700(),
            ProfileKind::XeonE5V4 => ProcessorProfile::xeon_e5_2620v4(),
            ProfileKind::XeonGold => ProcessorProfile::xeon_gold_6134(),
        }
    }
}

// Governor/sleep selection moved to the `cluster` crate so the fleet
// tier can instantiate per-server policies without depending on this
// harness; re-exported here so existing `experiments::{GovernorKind,
// SleepKind}` paths (and the Debug-derived checkpoint keys built from
// them) are unchanged.
pub use cluster::{GovernorKind, SleepKind};

/// How long experiments run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short windows for CI / quick checks.
    Quick,
    /// The full windows used for reported numbers.
    Full,
}

impl Scale {
    /// Warm-up before measurement begins.
    pub fn warmup(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(200),
            Scale::Full => SimDuration::from_millis(300),
        }
    }

    /// Measured-window length.
    pub fn duration(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(800),
            Scale::Full => SimDuration::from_millis(2_000),
        }
    }
}

/// A fully specified simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Application under test.
    pub app: AppKind,
    /// Offered load.
    pub load: LoadSpec,
    /// V/F governor.
    pub governor: GovernorKind,
    /// Sleep policy.
    pub sleep: SleepKind,
    /// Processor model.
    pub profile: ProfileKind,
    /// Fully custom processor (ablations); overrides `profile`.
    pub profile_override: Option<ProcessorProfile>,
    /// DVFS scope.
    pub scope: DvfsScope,
    /// RNG seed.
    pub seed: u64,
    /// Warm-up length (excluded from statistics).
    pub warmup: SimDuration,
    /// Measured-window length.
    pub duration: SimDuration,
    /// Collect per-event traces (timeline figures).
    pub collect_traces: bool,
    /// Deterministic fault schedule (chaos runs). Empty by default;
    /// inert without the `fault` feature. The plan's own seed (or the
    /// run seed when unset) travels with the config, so
    /// [`run_many`] reproduces serial runs exactly.
    pub fault_plan: FaultPlan,
    /// NIC queue-pair count override (RSS ablations). `None` — the
    /// default — gives one queue per core; more queues than cores is
    /// a [`validate`](RunConfig::validate) error.
    pub nic_queues: Option<usize>,
    /// Telemetry timeline sampling: fixed sim-time interval, bounded
    /// row cap with interval-doubling decimation. On by default (100
    /// µs / 512 rows); set cap 0 to disable. Zero-cost without the
    /// `obs` feature regardless.
    pub timeline: TimelineConfig,
}

impl RunConfig {
    /// A default-testbed run of `governor` on `app` at `load`.
    pub fn new(app: AppKind, load: LoadSpec, governor: GovernorKind, scale: Scale) -> Self {
        RunConfig {
            app,
            load,
            governor,
            sleep: SleepKind::Menu,
            profile: ProfileKind::XeonGold,
            profile_override: None,
            scope: DvfsScope::PerCore,
            seed: 42,
            warmup: scale.warmup(),
            duration: scale.duration(),
            collect_traces: false,
            fault_plan: FaultPlan::new(),
            nic_queues: None,
            timeline: TimelineConfig::default(),
        }
    }

    /// Sets the sleep policy.
    pub fn with_sleep(mut self, sleep: SleepKind) -> Self {
        self.sleep = sleep;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables trace collection.
    pub fn with_traces(mut self) -> Self {
        self.collect_traces = true;
        self
    }

    /// Sets the DVFS scope.
    pub fn with_scope(mut self, scope: DvfsScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the processor model.
    pub fn with_profile(mut self, profile: ProfileKind) -> Self {
        self.profile = profile;
        self
    }

    /// Installs a fault schedule (chaos runs).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the NIC queue count (RSS ablations).
    pub fn with_nic_queues(mut self, queues: usize) -> Self {
        self.nic_queues = Some(queues);
        self
    }

    /// Overrides the telemetry timeline sampling parameters
    /// ([`TimelineConfig::OFF`] disables sampling).
    pub fn with_timeline(mut self, timeline: TimelineConfig) -> Self {
        self.timeline = timeline;
        self
    }

    /// Validates the whole run specification before any simulation
    /// component can panic on it. Every degenerate input — zero
    /// cores, zero load, inverted thresholds, malformed fault plans,
    /// overflow-prone windows, more RSS queues than cores — becomes a
    /// typed [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.duration.is_zero() {
            return Err(SimError::invalid(
                "duration",
                "a zero-length measured window produces no statistics".to_string(),
            ));
        }
        if self.warmup.checked_add(self.duration).is_none() {
            return Err(SimError::invalid(
                "warmup+duration",
                format!(
                    "warm-up ({:?}) plus measured window ({:?}) overflows the \
                     nanosecond clock",
                    self.warmup, self.duration
                ),
            ));
        }
        self.governor.validate()?;
        // Assemble the testbed config exactly as `run` would and let
        // the testbed validate topology, load, queues, and fault plan.
        self.testbed_config().validate()
    }

    /// The [`TestbedConfig`] this run would instantiate.
    fn testbed_config(&self) -> TestbedConfig {
        let app = AppModel::for_kind(self.app);
        let profile = self
            .profile_override
            .clone()
            .unwrap_or_else(|| self.profile.profile());
        let mut tb_cfg = TestbedConfig::new(app, self.load)
            .with_seed(self.seed)
            .with_profile(profile)
            .with_scope(self.scope)
            .with_fault_plan(self.fault_plan.clone())
            .with_timeline(self.timeline);
        if let Some(q) = self.nic_queues {
            tb_cfg = tb_cfg.with_nic_queues(q);
        }
        if self.collect_traces {
            tb_cfg = tb_cfg.with_trace_capacity(DEFAULT_TRACE_CAPACITY);
        }
        tb_cfg
    }
}

/// Per-event traces collected when `collect_traces` is set.
///
/// `PartialEq` so determinism suites can compare whole trace sets
/// between same-seed runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTraces {
    /// Per-response `(receive time, latency)`.
    pub responses: Vec<(SimTime, SimDuration)>,
    /// Core 0 P-state changes `(time, state index)`.
    pub pstates_core0: Vec<(SimTime, u8)>,
    /// Core 0 interrupt-mode packet batches `(time, count)`.
    pub intr_batches_core0: Vec<(SimTime, u64)>,
    /// Core 0 polling-mode packet batches `(time, count)`.
    pub poll_batches_core0: Vec<(SimTime, u64)>,
    /// Core 0 ksoftirqd wake times.
    pub ksoftirqd_wakes_core0: Vec<SimTime>,
    /// Core 0 C-state entries `(time, state)`.
    pub cstates_core0: Vec<(SimTime, CState)>,
    /// Start of the measured window.
    pub measure_start: SimTime,
    /// End of the measured window.
    pub measure_end: SimTime,
    /// Structured trace events from every layer (IRQ marks, NAPI
    /// modes, P-/C-state residency, ksoftirqd, request spans, governor
    /// actions). Feed to [`perfetto_json`](crate::perfetto_json) for
    /// ui.perfetto.dev. Empty without the `obs` feature.
    pub trace: simcore::TraceBuffer,
}

/// Metrics extracted from one run.
///
/// `PartialEq` compares every field (including traces when present):
/// two same-seed runs must compare equal, which is what the
/// determinism suites assert.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Governor display name.
    pub governor: String,
    /// Sleep policy display name.
    pub sleep: String,
    /// Requests sent within the measured window.
    pub sent: u64,
    /// Responses received within the measured window.
    pub received: u64,
    /// P99 end-to-end latency.
    pub p99: SimDuration,
    /// P50 end-to-end latency.
    pub p50: SimDuration,
    /// Fraction of responses above the application SLO.
    pub frac_above_slo: f64,
    /// The SLO the fraction was computed against.
    pub slo: SimDuration,
    /// Package energy over the measured window, joules.
    pub energy_j: f64,
    /// Measured-window length.
    pub duration: SimDuration,
    /// Average package power, watts.
    pub avg_power_w: f64,
    /// Rx packets dropped at the NIC.
    pub rx_dropped: u64,
    /// DVFS transitions started.
    pub dvfs_transitions: u64,
    /// CC6 entries across cores.
    pub c6_entries: u64,
    /// Deterministically ordered counters/gauges/histograms from every
    /// layer. Empty without the `obs` feature. Same-seed runs produce
    /// byte-identical snapshots (the determinism suites assert this).
    pub metrics: MetricsSnapshot,
    /// Per-request latency attribution over the whole run (stage sums
    /// equal measured end-to-end latency for every request; audited).
    /// Empty without the `obs` feature.
    pub attrib: AttribSummary,
    /// Window-scoped energy attribution: per-core microjoule
    /// decomposition (conserving: measured == attributed, audited),
    /// the same energy split by packet-processing mode, and RAPL
    /// clamp accounting. Empty without the `obs` feature.
    pub energy: EnergySummary,
    /// Governor decision flight recorder: every operating-point
    /// change with the input-feature snapshot it acted on. Empty
    /// without the `obs` feature.
    pub gov_flight: FlightSummary,
    /// SLO watchdog summary: violation episodes, time-to-detect,
    /// time-to-recover. Always populated.
    pub watchdog: WatchdogReport,
    /// Counters for every fault actually injected. All zero without
    /// the `fault` feature or with an empty plan.
    pub faults: FaultStats,
    /// Governor graceful-degradation counters (NMAP's safe-fallback
    /// state machine; zero for governors without one).
    pub degradation: DegradationStats,
    /// Fault-onset → SLO-recovery join: how long the system needed to
    /// re-meet the SLO after each injected fault (satellite of the
    /// watchdog episode log). Empty when no faults were scheduled.
    pub fault_recovery: RecoverySummary,
    /// Telemetry timeline: per-core gauge rows sampled at a fixed
    /// sim-time interval over the whole run (see
    /// [`simcore::Timeline`]). All-integer and bounded; empty when
    /// sampling is off or without the `obs` feature.
    pub timeline: Timeline,
    /// Traces, if requested.
    pub traces: Option<RunTraces>,
}

impl RunResult {
    /// True if P99 meets the SLO.
    pub fn meets_slo(&self) -> bool {
        self.p99 <= self.slo
    }

    /// P99 normalized to the SLO (Fig 14's y-axis).
    pub fn p99_norm_slo(&self) -> f64 {
        self.p99.as_secs_f64() / self.slo.as_secs_f64()
    }
}

/// Default trace-buffer capacity for runs with `collect_traces` set:
/// ample for a quick-scale run while bounding a full-scale one (the
/// buffer counts drops instead of growing without limit).
pub const DEFAULT_TRACE_CAPACITY: usize = 2_000_000;

/// Deterministic engine statistics plus the one number that must stay
/// out of [`RunResult`]: wall-clock time. Keeping it here means golden
/// and determinism comparisons never see host timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunProfile {
    /// Event-queue statistics (scheduled/executed/cancelled events,
    /// heap-depth high water). Deterministic.
    pub engine: EngineProfile,
    /// Host wall-clock time the run took. NOT deterministic — never
    /// compare or persist this.
    pub wall: std::time::Duration,
}

/// Executes one run to completion and extracts its metrics.
///
/// # Panics
///
/// Panics on an invalid config; use [`try_run`] for the typed error.
pub fn run(cfg: RunConfig) -> RunResult {
    try_run(cfg).expect("invalid RunConfig")
}

/// Fallible [`run`]: an invalid config comes back as
/// [`SimError::InvalidConfig`] instead of a panic.
pub fn try_run(cfg: RunConfig) -> Result<RunResult, SimError> {
    try_run_budgeted(cfg, &StepBudget::unlimited())
}

/// Like [`try_run`], but aborts the cell with
/// [`SimError::BudgetExceeded`] once `budget` is exhausted — the
/// sweep supervisor's runaway-cell guard. The budget spans warm-up
/// plus the measured window.
pub fn try_run_budgeted(cfg: RunConfig, budget: &StepBudget) -> Result<RunResult, SimError> {
    let (result, _tb, _profile) = run_inner(cfg, budget, |_, _| {})?;
    Ok(result)
}

/// Like [`run`], but also reports how the engine and the host spent
/// the run (see [`RunProfile`]).
pub fn run_profiled(cfg: RunConfig) -> (RunResult, RunProfile) {
    let started = std::time::Instant::now();
    let (result, _tb, engine) =
        run_inner(cfg, &StepBudget::unlimited(), |_, _| {}).expect("invalid RunConfig");
    (
        result,
        RunProfile {
            engine,
            wall: started.elapsed(),
        },
    )
}

/// Like [`run`], but lets the caller hook the testbed right after
/// construction (install observers, schedule load switches) and hands
/// the final testbed back for custom extraction.
pub fn run_with_testbed(
    cfg: RunConfig,
    setup: impl FnOnce(&mut Testbed, &mut Simulator<Testbed>),
) -> (RunResult, Testbed) {
    let (result, tb, _profile) =
        run_inner(cfg, &StepBudget::unlimited(), setup).expect("invalid RunConfig");
    (result, tb)
}

fn run_inner(
    cfg: RunConfig,
    budget: &StepBudget,
    setup: impl FnOnce(&mut Testbed, &mut Simulator<Testbed>),
) -> Result<(RunResult, Testbed, EngineProfile), SimError> {
    cfg.validate()?;
    let app = AppModel::for_kind(cfg.app);
    let profile = cfg
        .profile_override
        .clone()
        .unwrap_or_else(|| cfg.profile.profile());
    let tb_cfg = cfg.testbed_config();
    let (governor, sleep) = cluster::build_policies(&cfg.governor, cfg.sleep, &profile, &app);
    let mut sim: Simulator<Testbed> = Simulator::new();
    let mut tb = Testbed::try_new(tb_cfg, governor, sleep, &mut sim)?;
    setup(&mut tb, &mut sim);

    let warmup_end = SimTime::ZERO + cfg.warmup;
    sim.run_until_budgeted(&mut tb, warmup_end, budget)?;
    tb.begin_measurement(warmup_end);
    let end = warmup_end + cfg.duration;
    sim.run_until_budgeted(&mut tb, end, budget)?;

    let sent = tb.client.sent();
    let received = tb.client.received();
    let slo = app.slo;
    let p99 = tb.client.latencies_mut().p99();
    let p50 = SimDuration::from_nanos(tb.client.latencies_mut().quantile(0.50));
    let frac_above_slo = tb.client.latencies_mut().fraction_above(slo.as_nanos());
    let energy_j = tb.measured_energy(end);
    let duration = tb.measured_duration(end);
    let avg_power_w = if duration.is_zero() {
        0.0
    } else {
        energy_j / duration.as_secs_f64()
    };
    // Assemble the structured trace (component-log replay) and the
    // metrics snapshot. Both are no-ops without the `obs` feature, as
    // are the energy-attribution and flight-recorder summaries.
    tb.collect_trace(end);
    tb.collect_metrics(end);
    let energy = tb.energy_summary(end);
    let gov_flight = tb.flight_summary();
    let engine = sim.profile();
    tb.metrics
        .set_counter("engine.events_scheduled", engine.events_scheduled);
    tb.metrics
        .set_counter("engine.events_executed", engine.events_executed);
    tb.metrics
        .set_counter("engine.events_cancelled", engine.events_cancelled);
    tb.metrics
        .set_counter("engine.max_pending", engine.max_pending as u64);
    let traces = cfg.collect_traces.then(|| {
        let core0 = tb.processor.core(cpusim::CoreId(0));
        RunTraces {
            responses: tb.client.response_log().to_vec(),
            pstates_core0: log_map(core0.pstate_log(), |p| p.index()),
            intr_batches_core0: log_map(tb.napi[0].interrupt_packet_log(), |&n| n),
            poll_batches_core0: log_map(tb.napi[0].polling_packet_log(), |&n| n),
            ksoftirqd_wakes_core0: tb.ksoftirqd_log[0]
                .iter()
                .filter(|&&(_, awake)| awake)
                .map(|&(t, _)| t)
                .collect(),
            cstates_core0: log_map(core0.cstate_log(), |&c| c),
            measure_start: warmup_end,
            measure_end: end,
            trace: tb.trace.clone(),
        }
    });
    // Self-audit: with the `audit` feature on, every run proves its
    // conservation identities before reporting metrics. A violation
    // is a typed error, so a sweep supervisor can quarantine the cell
    // instead of losing the whole sweep to a panic.
    if let Some(report) = tb.audit_report(end) {
        if !report.is_balanced() {
            let listing = report
                .violations()
                .iter()
                .map(|c| format!("  {c}"))
                .collect::<Vec<_>>()
                .join("\n");
            return Err(SimError::Accounting {
                context: "conservation audit",
                reason: listing,
            });
        }
    }
    // Join the fault schedule with the watchdog's violation episodes:
    // per-fault time-to-recover, the report's recovery-time metric.
    let scopes: Vec<FaultScope> = cfg.fault_plan.specs.iter().map(|s| s.scope).collect();
    let fault_recovery = join_recovery(&scopes, tb.watchdog.episode_log());
    let result = RunResult {
        governor: tb.governor.name(),
        sleep: tb.sleep.name(),
        sent,
        received,
        p99,
        p50,
        frac_above_slo,
        slo,
        energy_j,
        duration,
        avg_power_w,
        rx_dropped: tb.nic.total_rx_dropped(),
        dvfs_transitions: tb.processor.total_transitions(),
        c6_entries: tb.processor.cores().iter().map(|c| c.c6_entries()).sum(),
        metrics: tb.metrics.snapshot(),
        attrib: tb.attrib.summary(),
        energy,
        gov_flight,
        watchdog: tb.watchdog.report(end),
        faults: tb.faults.stats(),
        degradation: tb.governor.degradation(),
        fault_recovery,
        timeline: tb.timeline.finish(),
        traces,
    };
    Ok((result, tb, engine))
}

fn log_map<T, U>(log: &EventLog<T>, f: impl Fn(&T) -> U) -> Vec<(SimTime, U)> {
    log.iter().map(|(t, v)| (*t, f(v))).collect()
}

/// Runs many configs across worker threads (one testbed per thread),
/// preserving input order in the output.
pub fn run_many(configs: Vec<RunConfig>) -> Vec<RunResult> {
    if configs.len() <= 1 {
        return configs.into_iter().map(run).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(configs.len());
    let jobs: Mutex<VecDeque<(usize, RunConfig)>> =
        Mutex::new(configs.into_iter().enumerate().collect());
    let n = lock(&jobs).len();
    let results: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; n]);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = lock(&jobs).pop_front();
                let Some((idx, cfg)) = job else { break };
                let result = run(cfg);
                lock(&results)[idx] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("worker skipped a job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmap::NmapConfig;

    fn tiny(governor: GovernorKind) -> RunConfig {
        RunConfig {
            warmup: SimDuration::from_millis(100),
            duration: SimDuration::from_millis(300),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                governor,
                Scale::Quick,
            )
        }
    }

    #[test]
    fn performance_run_produces_metrics() {
        let r = run(tiny(GovernorKind::Performance));
        assert_eq!(r.governor, "performance");
        assert!(r.received > 1_000);
        assert!(r.p99 > SimDuration::from_micros(40));
        assert!(r.energy_j > 0.0);
        assert!(r.avg_power_w > 1.0);
    }

    #[test]
    fn traces_are_collected_on_request() {
        let r = run(tiny(GovernorKind::Ondemand).with_traces());
        let t = r.traces.expect("traces requested");
        assert!(!t.responses.is_empty());
        assert_eq!(
            t.measure_end - t.measure_start,
            SimDuration::from_millis(300)
        );
    }

    #[test]
    fn run_many_preserves_order() {
        let configs = vec![
            tiny(GovernorKind::Performance),
            tiny(GovernorKind::Powersave),
            tiny(GovernorKind::Ondemand),
        ];
        let results = run_many(configs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].governor, "performance");
        assert_eq!(results[1].governor, "powersave");
        assert_eq!(results[2].governor, "ondemand");
    }

    #[test]
    fn powersave_uses_less_power_than_performance() {
        let perf = run(tiny(GovernorKind::Performance));
        let save = run(tiny(GovernorKind::Powersave));
        assert!(save.avg_power_w < perf.avg_power_w);
        assert!(save.p99 >= perf.p99);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let base = tiny(GovernorKind::Ondemand);
        let mut zero_duration = base.clone();
        zero_duration.duration = SimDuration::ZERO;
        let mut overflow_window = base.clone();
        overflow_window.warmup = SimDuration::MAX;
        overflow_window.duration = SimDuration::MAX;
        let mut zero_load = base.clone();
        zero_load.load = LoadSpec::custom(0.0, SimDuration::from_millis(100), 0.4, 0.3);
        let bad_ncap = tiny(GovernorKind::Ncap(f64::NAN));
        let mut bad_nmap = base.clone();
        bad_nmap.governor = GovernorKind::Nmap(NmapConfig {
            ni_threshold: 0,
            ..NmapConfig::new(64, 1.5)
        });
        for (name, cfg) in [
            ("zero duration", zero_duration),
            ("overflowing window", overflow_window),
            ("zero load", zero_load),
            ("NaN NCAP threshold", bad_ncap),
            ("zero NI_TH", bad_nmap),
        ] {
            let err = cfg.validate().expect_err(name);
            assert!(err.is_config(), "{name}: wrong variant: {err}");
            assert!(try_run(cfg).is_err(), "{name}: try_run must refuse");
        }
    }

    #[test]
    fn more_rss_queues_than_cores_is_a_config_error() {
        // Regression: this used to panic deep in netsim's RSS
        // indexing instead of failing validation.
        let cores = ProfileKind::XeonGold.profile().cores;
        let cfg = tiny(GovernorKind::Ondemand).with_nic_queues(cores + 1);
        let err = cfg.validate().expect_err("must be rejected");
        assert!(err.is_config());
        assert!(
            err.to_string().contains("RSS"),
            "message should explain the RSS constraint: {err}"
        );
        assert!(try_run(cfg).is_err());
    }

    #[test]
    fn fewer_queues_than_cores_still_runs() {
        let r = run(tiny(GovernorKind::Ondemand).with_nic_queues(2));
        assert!(r.received > 0, "two queues still serve traffic");
    }

    #[test]
    fn event_budget_aborts_a_cell_with_a_typed_error() {
        let budget = StepBudget::unlimited().with_max_events(5_000);
        let err = try_run_budgeted(tiny(GovernorKind::Ondemand), &budget)
            .expect_err("5k events cannot finish a 400ms run");
        assert!(err.is_budget(), "wrong variant: {err}");
    }

    #[test]
    fn budgeted_run_with_room_matches_unbudgeted() {
        let cfg = tiny(GovernorKind::Performance);
        let budget = StepBudget::unlimited().with_max_events(u64::MAX);
        let a = try_run_budgeted(cfg.clone(), &budget).expect("fits budget");
        let b = run(cfg);
        assert_eq!(a, b, "budget guard must not perturb the simulation");
    }

    #[test]
    fn governor_labels_match_names() {
        for (kind, _expect) in [
            (GovernorKind::Performance, "performance"),
            (GovernorKind::Ondemand, "ondemand"),
            (GovernorKind::Nmap(NmapConfig::new(64, 1.5)), "NMAP"),
        ] {
            let r = run(tiny(kind));
            assert_eq!(r.governor, kind.label());
        }
    }

    #[test]
    fn sleep_kinds_are_wired() {
        let menu = run(tiny(GovernorKind::Performance));
        let disable = run(tiny(GovernorKind::Performance).with_sleep(SleepKind::Disable));
        assert_eq!(disable.sleep, "disable");
        assert_eq!(disable.c6_entries, 0, "disable must never reach CC6");
        assert!(
            disable.avg_power_w > menu.avg_power_w,
            "idling in C0 costs power"
        );
    }
}
