//! A minimal, dependency-free JSON value with writer and parser —
//! just enough for the sweep checkpoint file (`checkpoint.jsonl`).
//!
//! Numbers are unsigned 64-bit integers only: every float in a
//! checkpoint is stored as its IEEE-754 bit pattern
//! (`f64::to_bits`), which round-trips exactly where a decimal
//! rendering would not — resumed sweeps must merge to byte-identical
//! artifacts. The parser is torn-line tolerant by construction: any
//! malformed input is a typed error the checkpoint loader can skip.

use std::fmt::Write as _;

/// A JSON value restricted to the checkpoint subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (floats travel as bit patterns).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Wraps a float as its exact bit pattern.
    pub fn bits(f: f64) -> Value {
        Value::UInt(f.to_bits())
    }

    /// Object constructor shorthand.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The float decoded from a bit pattern, if this is an integer.
    pub fn as_bits_f64(&self) -> Option<f64> {
        self.as_u64().map(f64::from_bits)
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed; carries the byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing stopped.
    pub at: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

/// Parses one complete JSON value; trailing input is an error (a
/// torn checkpoint line must not half-parse as valid).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            reason: "trailing input after value",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(
    bytes: &[u8],
    pos: &mut usize,
    b: u8,
    reason: &'static str,
) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, reason })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            at: *pos,
            reason: "unexpected end of input",
        }),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            reason: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':', "expected ':' after object key")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            reason: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        Some(b'0'..=b'9') => {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            let digits = &input_slice(bytes, start, *pos);
            digits
                .parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| ParseError {
                    at: start,
                    reason: "integer out of u64 range",
                })
        }
        Some(_) => Err(ParseError {
            at: *pos,
            reason: "unexpected character",
        }),
    }
}

fn input_slice(bytes: &[u8], start: usize, end: usize) -> String {
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Value,
) -> Result<Value, ParseError> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError {
            at: *pos,
            reason: "malformed literal",
        })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect_byte(bytes, pos, b'"', "expected '\"'")?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    at: *pos,
                    reason: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| ParseError {
                    at: *pos,
                    reason: "invalid UTF-8 in string",
                });
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        if bytes.len() < *pos + 5 {
                            return Err(ParseError {
                                at: *pos,
                                reason: "truncated \\u escape",
                            });
                        }
                        let hex = input_slice(bytes, *pos + 1, *pos + 5);
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| ParseError {
                            at: *pos,
                            reason: "malformed \\u escape",
                        })?;
                        let c = char::from_u32(code).ok_or(ParseError {
                            at: *pos,
                            reason: "\\u escape is not a scalar value",
                        })?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            reason: "unknown escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::obj(vec![
            ("kind", Value::Str("cell".into())),
            ("n", Value::UInt(u64::MAX)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "items",
                Value::Arr(vec![Value::UInt(1), Value::Str("a\"b\\c\nd".into())]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).expect("round trip"), v);
    }

    #[test]
    fn floats_round_trip_exactly_as_bits() {
        for f in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1.0e-300, 0.1 + 0.2] {
            let text = Value::bits(f).to_json();
            let back = parse(&text)
                .expect("parses")
                .as_bits_f64()
                .expect("integer");
            assert_eq!(back.to_bits(), f.to_bits(), "{f} must round-trip");
        }
    }

    #[test]
    fn torn_lines_are_errors_not_panics() {
        for torn in [
            "",
            "{",
            "{\"kind\":\"cell\"",
            "{\"kind\":\"cell\",\"result\":{\"sent\":12",
            "nul",
            "\"unterminated",
            "[1,2",
            "{\"a\":1}trailing",
            "-5",
            "1.5",
            "{\"a\"1}",
        ] {
            assert!(parse(torn).is_err(), "{torn:?} must be rejected");
        }
    }

    #[test]
    fn control_chars_escape_and_parse() {
        let s = "\u{1}\u{2}tab\there";
        let text = Value::Str(s.into()).to_json();
        assert_eq!(parse(&text).expect("parses").as_str(), Some(s));
    }
}
