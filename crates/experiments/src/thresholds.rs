//! Offline threshold selection.
//!
//! * **NMAP** (§4.2): run one short profiling simulation at the
//!   SLO-defining load (the latency-load knee — we use the High
//!   preset), observing the first 100 interrupts of the request
//!   bursts through [`ThresholdProfiler`]; `NI_TH` is the maximum
//!   polling-per-interrupt episode and `CU_TH` the average
//!   polling-to-interrupt ratio.
//! * **NCAP** (§6.3): the boost threshold is "tuned to satisfy the
//!   SLOs at a high load of each application"; we use 20 % of the
//!   high-load average packet rate, which trips early in every burst
//!   that could overrun the lower P-states.

use crate::runner::{GovernorKind, RunConfig, Scale};
use nmap::{NmapConfig, ThresholdProfiler};
use simcore::SimDuration;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use workload::{AppKind, LoadLevel, LoadSpec};

/// Profiles NMAP's thresholds for `app` (§4.2). Results are memoized
/// per application, as in the paper: thresholds are re-derived only
/// when the application changes, never per load level.
pub fn nmap_config(app: AppKind) -> NmapConfig {
    static CACHE: OnceLock<Mutex<HashMap<AppKind, NmapConfig>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut memo = cache.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(cfg) = memo.get(&app) {
        return *cfg;
    }
    let cfg = profile_nmap(app);
    memo.insert(app, cfg);
    cfg
}

fn profile_nmap(app: AppKind) -> NmapConfig {
    // The profiling run: the SLO-defining load under the performance
    // governor — the same configuration that produced the latency-load
    // knee the SLO was read from. Profiling at max V/F keeps the
    // observed polling episodes at their "early part of the burst"
    // size (§4.2) instead of the overload-inflated episodes a slow
    // P-state would produce.
    let load = LoadSpec::preset(app, LoadLevel::High);
    let cfg = RunConfig {
        warmup: SimDuration::ZERO,
        duration: SimDuration::from_millis(400),
        ..RunConfig::new(app, load, GovernorKind::Performance, Scale::Quick)
    };
    let cores = cfg.profile.profile().cores;
    let profiler = std::rc::Rc::new(std::cell::RefCell::new(ThresholdProfiler::new(cores)));
    let sink = std::rc::Rc::clone(&profiler);
    let (_result, _tb) = crate::runner::run_with_testbed(cfg, move |tb, _sim| {
        tb.poll_observer = Some(Box::new(move |core, class, n, _now| {
            sink.borrow_mut().record_batch(core, class, n);
        }));
    });
    let derived = profiler.borrow().derive();
    // Deployment calibration of the fallback threshold. For µs-scale
    // services (memcached) the paper's raw burst-average CU_TH is
    // safe: a mid-burst fallback that proves premature re-boosts
    // within one poll batch and the shallow queue drains instantly —
    // this is what lets NMAP shed energy *inside* bursts (Fig 9's
    // quick lowering). For ~100 µs services (nginx) a premature
    // fallback builds a milliseconds-deep queue before the re-boost
    // lands (each paying the §5.1 re-transition latency), so the
    // fallback is keyed to the burst's decay with a 0.5 factor.
    let cu_factor = match app {
        AppKind::Memcached => 1.0,
        AppKind::Nginx => 0.5,
    };
    NmapConfig::new(derived.ni_threshold, derived.cu_threshold * cu_factor)
}

/// NCAP's tuned boost threshold in *packets* per second for `app`
/// (NCAP monitors the NIC, which sees `rx_packets_per_request` wire
/// packets per request). Per §6.3 the threshold is tuned to satisfy
/// the SLOs at high load: it must catch the medium and high burst
/// plateaus (which overrun the lower P-states) while ignoring the low
/// preset, which is SLO-safe even at Pmin — boosting there would only
/// burn energy.
pub fn ncap_threshold(app: AppKind) -> f64 {
    let rx_mult = appsim::AppModel::for_kind(app).rx_packets_per_request as f64;
    let low_peak = LoadSpec::preset(app, LoadLevel::Low).peak_rps() * rx_mult;
    let med_peak = LoadSpec::preset(app, LoadLevel::Medium).peak_rps() * rx_mult;
    0.5 * (low_peak + med_peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncap_thresholds_sit_between_low_and_medium_peaks() {
        for app in [AppKind::Memcached, AppKind::Nginx] {
            let rx = appsim::AppModel::for_kind(app).rx_packets_per_request as f64;
            let low = LoadSpec::preset(app, LoadLevel::Low).peak_rps() * rx;
            let med = LoadSpec::preset(app, LoadLevel::Medium).peak_rps() * rx;
            let th = ncap_threshold(app);
            assert!(
                th > low,
                "{app}: threshold {th} must ignore the low preset ({low})"
            );
            assert!(
                th < med,
                "{app}: threshold {th} must catch the medium preset ({med})"
            );
        }
    }

    #[test]
    fn nmap_profiling_produces_plausible_thresholds() {
        let cfg = nmap_config(AppKind::Memcached);
        // High load must actually exercise polling mode.
        assert!(cfg.ni_threshold > 1, "NI_TH {} too small", cfg.ni_threshold);
        assert!(
            cfg.ni_threshold < 1_000_000,
            "NI_TH {} absurd",
            cfg.ni_threshold
        );
        assert!(cfg.cu_threshold > 0.0);
        // Memoization returns the identical config.
        assert_eq!(nmap_config(AppKind::Memcached), cfg);
    }
}
