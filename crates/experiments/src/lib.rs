//! # experiments — regenerating every table and figure
//!
//! The harness behind `cargo run -p experiments --bin repro`:
//!
//! * [`runner`] — one fully specified simulation run ([`RunConfig`] →
//!   [`RunResult`]) plus a thread-parallel sweep helper;
//! * [`thresholds`] — the offline NMAP threshold profiling (§4.2) and
//!   NCAP's tuned boost threshold;
//! * [`figures`] — one module per paper artifact (Fig 2-4, Table 1-2,
//!   Fig 7-16, plus the ablations), each returning a printable
//!   [`report::FigureReport`];
//! * [`report`] — plain-text table formatting;
//! * [`export`] — CSV trace export for external plotting.
//!
//! Absolute numbers come from the calibrated simulator, so reports
//! should be read for *shape* (who wins, where SLOs break) — see
//! EXPERIMENTS.md for the paper-vs-measured comparison.

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod ckpt;
pub mod export;
pub mod figures;
pub mod json;
pub mod report;
pub mod runner;
pub mod supervisor;
pub mod thresholds;

pub use ckpt::{cell_key, Checkpoint, QuarantineRecord};
pub use export::{
    perfetto_json, perfetto_json_with_drops, write_perfetto_json, write_timeline_csv,
    write_timeline_openmetrics,
};
pub use report::FigureReport;
pub use runner::{
    run, run_many, run_profiled, try_run, try_run_budgeted, GovernorKind, ProfileKind, RunConfig,
    RunProfile, RunResult, RunTraces, Scale, SleepKind,
};
pub use supervisor::{CellOutcome, Supervisor, SupervisorPolicy};
