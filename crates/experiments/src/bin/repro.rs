//! `repro` — regenerate the NMAP paper's tables and figures.
//!
//! ```text
//! Usage: repro [--quick] [--out DIR] [--trace-out DIR]
//!              [--checkpoint FILE] <id>... | all | --list
//!
//!   --quick           short measurement windows (CI-sized); default is
//!                     the full windows used for reported numbers
//!   --out DIR         also write each artifact to DIR/<id>.txt
//!                     (written atomically: tempfile + rename, so a
//!                     crash never leaves a truncated artifact)
//!   --trace-out DIR   also rerun each artifact's representative cell
//!                     with tracing and write DIR/<id>.trace.json
//!                     (Perfetto-loadable; needs `--features obs`)
//!   --checkpoint FILE stream finished sweep cells to FILE (append-only
//!                     JSONL); re-running with the same FILE after a
//!                     crash or Ctrl-C skips completed cells and
//!                     produces byte-identical artifacts
//!   --list            print the available artifact ids
//! ```
//!
//! Sweeps run under a [`Supervisor`]: cells that fail transiently are
//! retried with backoff, persistently failing cells are quarantined
//! (reported at the end, with placeholder rows rendered as `n/a` in
//! the affected tables) and the rest of the sweep still completes.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use experiments::runner::{run, Scale};
use experiments::{export, figures, report, Supervisor};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut ckpt_path: Option<String> = None;
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--out" => {
                out_dir = iter.next();
                if out_dir.is_none() {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
            "--trace-out" => {
                trace_dir = iter.next();
                if trace_dir.is_none() {
                    eprintln!("--trace-out requires a directory");
                    std::process::exit(2);
                }
            }
            "--checkpoint" => {
                ckpt_path = iter.next();
                if ckpt_path.is_none() {
                    eprintln!("--checkpoint requires a file path");
                    std::process::exit(2);
                }
            }
            "--list" => {
                for id in figures::all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "Usage: repro [--quick] [--out DIR] [--trace-out DIR] \
                     [--checkpoint FILE] <id>... | all | --list"
                );
                println!("ids: {}", figures::all_ids().join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no artifact requested; try `repro --list` or `repro all`");
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = figures::all_ids().iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create trace output directory");
    }

    let sup = match &ckpt_path {
        Some(path) => match Supervisor::new().with_checkpoint(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open checkpoint {path}: {e}");
                std::process::exit(2);
            }
        },
        None => Supervisor::new(),
    };

    let mut produced: std::collections::HashSet<String> = std::collections::HashSet::new();
    for id in &ids {
        if produced.contains(id) {
            continue;
        }
        let start = std::time::Instant::now();
        let reports = figures::generate_with(id, scale, &sup);
        if reports.is_empty() {
            eprintln!("unknown artifact id: {id} (try --list)");
            std::process::exit(2);
        }
        for report in reports {
            println!("{report}");
            println!("[generated in {:.1}s]\n", start.elapsed().as_secs_f64());
            if let Some(dir) = &out_dir {
                let path = format!("{dir}/{}.txt", report.id);
                write_atomic(&path, &format!("{report}")).expect("write artifact");
            }
            produced.insert(report.id.clone());
        }
        if let Some(dir) = &trace_dir {
            dump_trace(id, scale, dir);
        }
    }

    if ckpt_path.is_some() && sup.cells_resumed() > 0 {
        eprintln!(
            "[checkpoint: {} finished cell(s) resumed without re-running]",
            sup.cells_resumed()
        );
    }
    let quarantined = sup.quarantined();
    if !quarantined.is_empty() {
        let mut section = String::from(
            "QUARANTINED CELLS\n\
             The following sweep cells failed persistently and were \
             excluded (their rows render as zeros / n/a):\n",
        );
        for q in &quarantined {
            section.push_str(&format!(
                "  cell {:016x} [{}] after {} attempt(s): {}\n",
                q.key, q.governor, q.attempts, q.error
            ));
        }
        eprint!("{section}");
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/quarantine.txt");
            write_atomic(&path, &section).expect("write quarantine report");
        }
        std::process::exit(1);
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// sibling tempfile first and are renamed into place, so a crash
/// mid-write can never leave a truncated artifact behind.
fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reruns `id`'s representative cell with tracing and writes
/// `dir/<id>.trace.json`. Surfaces the buffer's drop count so a
/// truncated timeline is never mistaken for a quiet one.
fn dump_trace(id: &str, scale: Scale, dir: &str) {
    let Some(cfg) = figures::representative_cell(id, scale) else {
        eprintln!("note: {id} has no underlying simulation; no trace written");
        return;
    };
    let result = run(cfg);
    if let Some(traces) = &result.traces {
        if let Some(warning) = report::trace_drop_warning(id, traces.trace.dropped()) {
            eprintln!("{warning}");
        }
        let path = format!("{dir}/{id}.trace.json");
        export::write_perfetto_json(&result, &path).expect("write trace json");
        println!("[trace for {id} written to {path}]\n");
    }
    if !result.timeline.is_empty() {
        if let Some(warning) = report::trace_drop_warning("timeline", result.timeline.dropped) {
            eprintln!("{warning}");
        }
        let csv = format!("{dir}/{id}.timeline.csv");
        let om = format!("{dir}/{id}.timeline.om");
        export::write_timeline_csv(&result, &csv).expect("write timeline csv");
        export::write_timeline_openmetrics(&result, &om).expect("write timeline openmetrics");
        println!("[timeline for {id} written to {csv} and {om}]\n");
    }
}
