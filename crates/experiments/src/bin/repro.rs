//! `repro` — regenerate the NMAP paper's tables and figures.
//!
//! ```text
//! Usage: repro [--quick] [--out DIR] <id>... | all | --list
//!
//!   --quick   short measurement windows (CI-sized); default is the
//!             full windows used for reported numbers
//!   --out DIR also write each artifact to DIR/<id>.txt
//!   --list    print the available artifact ids
//! ```

use experiments::figures;
use experiments::runner::Scale;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--out" => {
                out_dir = iter.next();
                if out_dir.is_none() {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
            "--list" => {
                for id in figures::all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!("Usage: repro [--quick] [--out DIR] <id>... | all | --list");
                println!("ids: {}", figures::all_ids().join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no artifact requested; try `repro --list` or `repro all`");
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = figures::all_ids().iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut produced: std::collections::HashSet<String> = std::collections::HashSet::new();
    for id in &ids {
        if produced.contains(id) {
            continue;
        }
        let start = std::time::Instant::now();
        let reports = figures::generate(id, scale);
        if reports.is_empty() {
            eprintln!("unknown artifact id: {id} (try --list)");
            std::process::exit(2);
        }
        for report in reports {
            println!("{report}");
            println!("[generated in {:.1}s]\n", start.elapsed().as_secs_f64());
            if let Some(dir) = &out_dir {
                let path = format!("{dir}/{}.txt", report.id);
                let mut f = std::fs::File::create(&path).expect("create artifact file");
                write!(f, "{report}").expect("write artifact");
            }
            produced.insert(report.id.clone());
        }
    }
}
