//! Software NCAP (Alian et al., HPCA'17) — the paper's
//! state-of-the-art comparison point (§6.3).
//!
//! NCAP monitors the network load at the NIC periodically. When the
//! observed request rate exceeds a threshold it maximizes the V/F
//! state of **all** cores (chip-wide); otherwise the CPU-utilization
//! governor drives. The original also disables the sleep states
//! during a burst; [`NcapSleepGate`] couples a sleep policy to the
//! governor's burst flag to reproduce that (NCAP vs NCAP-menu).
//!
//! Per §6.3 the software version has a slightly longer monitoring
//! period than the HW original; we default to 5 ms.

use crate::ondemand::Ondemand;
use crate::traits::{Action, PStateGovernor, SleepPolicy};
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CState, CoreId, PState};
use simcore::{SimDuration, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// NCAP tunables.
#[derive(Debug, Clone, Copy)]
pub struct NcapConfig {
    /// Monitoring period (software version: a bit longer than HW).
    pub monitor_interval: SimDuration,
    /// Packets per second above which the chip is boosted.
    pub boost_threshold_pps: f64,
    /// Consecutive quiet windows before releasing the boost.
    pub release_windows: u32,
    /// Whether the boost also disables sleep states (original NCAP;
    /// `false` gives NCAP-menu).
    pub gate_sleep: bool,
}

impl NcapConfig {
    /// Defaults tuned, as §6.3 describes, "to satisfy the SLOs at a
    /// high load of each application".
    pub fn with_threshold(boost_threshold_pps: f64) -> Self {
        NcapConfig {
            monitor_interval: SimDuration::from_millis(5),
            boost_threshold_pps,
            release_windows: 2,
            gate_sleep: true,
        }
    }
}

/// The NCAP governor: NIC-load-triggered chip-wide boost over an
/// inner ondemand.
pub struct Ncap {
    config: NcapConfig,
    inner: Ondemand,
    boosted: bool,
    quiet_windows: u32,
    burst_flag: Rc<Cell<bool>>,
}

impl Ncap {
    /// Creates NCAP over the given P-state table.
    pub fn new(table: PStateTable, cores: usize, config: NcapConfig) -> Self {
        Ncap {
            config,
            inner: Ondemand::new(table, cores),
            boosted: false,
            quiet_windows: 0,
            burst_flag: Rc::new(Cell::new(false)),
        }
    }

    /// Shared burst flag for [`NcapSleepGate`].
    pub fn burst_flag(&self) -> Rc<Cell<bool>> {
        Rc::clone(&self.burst_flag)
    }

    /// True while the chip-wide boost is held.
    pub fn is_boosted(&self) -> bool {
        self.boosted
    }
}

impl PStateGovernor for Ncap {
    fn name(&self) -> String {
        if self.config.gate_sleep {
            "NCAP".into()
        } else {
            "NCAP-menu".into()
        }
    }

    fn sampling_interval(&self) -> SimDuration {
        self.config.monitor_interval
    }

    fn on_nic_window(&mut self, rx_packets: u64, _now: SimTime, actions: &mut Vec<Action>) {
        let window_s = self.config.monitor_interval.as_secs_f64();
        let pps = rx_packets as f64 / window_s;
        if pps >= self.config.boost_threshold_pps {
            self.quiet_windows = 0;
            if !self.boosted {
                self.boosted = true;
                if self.config.gate_sleep {
                    self.burst_flag.set(true);
                }
                actions.push(Action::SetAll(PState::P0));
            }
        } else if self.boosted {
            self.quiet_windows += 1;
            if self.quiet_windows >= self.config.release_windows {
                self.boosted = false;
                self.burst_flag.set(false);
                // Control returns to the utilization governor at the
                // next sample.
            }
        }
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        if self.boosted {
            // Keep the inner governor's view current but override its
            // decision with the boost.
            self.inner.note_pstate(core, PState::P0);
            actions.push(Action::SetCore(core, PState::P0));
        } else {
            self.inner.on_core_sample(core, sample, now, actions);
        }
    }
}

/// Menu-like sleep policy gated by NCAP's burst flag: while the chip
/// is boosted, cores never sleep (original NCAP behaviour).
pub struct NcapSleepGate<P> {
    inner: P,
    burst_flag: Rc<Cell<bool>>,
}

impl<P: SleepPolicy> NcapSleepGate<P> {
    /// Wraps `inner` with the gate driven by `burst_flag`.
    pub fn new(inner: P, burst_flag: Rc<Cell<bool>>) -> Self {
        NcapSleepGate { inner, burst_flag }
    }
}

impl<P: SleepPolicy> SleepPolicy for NcapSleepGate<P> {
    fn name(&self) -> String {
        format!("{}+ncap-gate", self.inner.name())
    }

    fn on_idle(&mut self, core: CoreId, now: SimTime) -> CState {
        if self.burst_flag.get() {
            // Record history in the inner policy but stay awake.
            let _ = self.inner.on_idle(core, now);
            self.inner.on_wake(core, now);
            CState::C0
        } else {
            self.inner.on_idle(core, now)
        }
    }

    fn on_tick(
        &mut self,
        core: CoreId,
        idle_elapsed: simcore::SimDuration,
        now: SimTime,
    ) -> Option<CState> {
        if self.burst_flag.get() {
            None // sleep stays gated during the boost
        } else {
            self.inner.on_tick(core, idle_elapsed, now)
        }
    }

    fn on_wake(&mut self, core: CoreId, now: SimTime) {
        if !self.burst_flag.get() {
            self.inner.on_wake(core, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::MenuPolicy;
    use cpusim::ProcessorProfile;

    fn ncap() -> Ncap {
        Ncap::new(
            ProcessorProfile::xeon_gold_6134().pstates,
            8,
            NcapConfig::with_threshold(100_000.0),
        )
    }

    #[test]
    fn boosts_on_burst() {
        let mut g = ncap();
        let mut actions = Vec::new();
        // 100k pps threshold × 5 ms window → 500 packets triggers.
        g.on_nic_window(600, SimTime::ZERO, &mut actions);
        assert_eq!(actions, vec![Action::SetAll(PState::P0)]);
        assert!(g.is_boosted());
        assert!(g.burst_flag().get(), "sleep gate raised");
    }

    #[test]
    fn below_threshold_defers_to_ondemand() {
        let mut g = ncap();
        let mut actions = Vec::new();
        g.on_nic_window(10, SimTime::ZERO, &mut actions);
        assert!(actions.is_empty());
        g.on_core_sample(
            CoreId(0),
            UtilSample {
                busy_frac: 0.0,
                c0_frac: 0.0,
                window: SimDuration::from_millis(5),
            },
            SimTime::ZERO,
            &mut actions,
        );
        // ondemand decision for an idle core: slowest.
        let slowest = ProcessorProfile::xeon_gold_6134().pstates.slowest();
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), slowest)]);
    }

    #[test]
    fn releases_after_quiet_windows() {
        let mut g = ncap();
        let mut actions = Vec::new();
        g.on_nic_window(600, SimTime::ZERO, &mut actions);
        assert!(g.is_boosted());
        actions.clear();
        g.on_nic_window(10, SimTime::from_millis(5), &mut actions);
        assert!(g.is_boosted(), "one quiet window is not enough");
        g.on_nic_window(10, SimTime::from_millis(10), &mut actions);
        assert!(!g.is_boosted());
        assert!(!g.burst_flag().get(), "sleep gate released");
    }

    #[test]
    fn boost_holds_through_intermittent_traffic() {
        let mut g = ncap();
        let mut actions = Vec::new();
        g.on_nic_window(600, SimTime::ZERO, &mut actions);
        g.on_nic_window(10, SimTime::from_millis(5), &mut actions);
        g.on_nic_window(600, SimTime::from_millis(10), &mut actions);
        g.on_nic_window(10, SimTime::from_millis(15), &mut actions);
        assert!(g.is_boosted(), "quiet counter must reset on traffic");
    }

    #[test]
    fn ncap_menu_variant_leaves_sleep_alone() {
        let mut cfg = NcapConfig::with_threshold(100_000.0);
        cfg.gate_sleep = false;
        let mut g = Ncap::new(ProcessorProfile::xeon_gold_6134().pstates, 8, cfg);
        assert_eq!(g.name(), "NCAP-menu");
        let mut actions = Vec::new();
        g.on_nic_window(600, SimTime::ZERO, &mut actions);
        assert!(g.is_boosted());
        assert!(!g.burst_flag().get(), "NCAP-menu never gates sleep");
    }

    #[test]
    fn sleep_gate_blocks_sleep_during_burst() {
        let flag = Rc::new(Cell::new(false));
        let mut gate = NcapSleepGate::new(MenuPolicy::new(1), Rc::clone(&flag));
        // Train menu to deep sleep.
        for i in 0..8 {
            let t = SimTime::from_millis(10 * i);
            gate.on_idle(CoreId(0), t);
            gate.on_wake(CoreId(0), t + SimDuration::from_millis(5));
        }
        assert_eq!(gate.on_idle(CoreId(0), SimTime::from_secs(1)), CState::C6);
        gate.on_wake(CoreId(0), SimTime::from_secs(1));
        flag.set(true);
        assert_eq!(gate.on_idle(CoreId(0), SimTime::from_secs(2)), CState::C0);
    }
}
