//! The `userspace` governor: whatever state the operator set.

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::{CoreId, PState};
use simcore::SimTime;

/// Pins every core at a user-chosen P-state.
#[derive(Debug, Clone, Copy)]
pub struct Userspace {
    target: PState,
}

impl Userspace {
    /// Creates the governor pinned at `target`.
    pub fn new(target: PState) -> Self {
        Userspace { target }
    }

    /// Changes the pinned state (takes effect at the next sample).
    pub fn set_target(&mut self, target: PState) {
        self.target = target;
    }

    /// The pinned state.
    pub fn target(&self) -> PState {
        self.target
    }
}

impl PStateGovernor for Userspace {
    fn name(&self) -> String {
        format!("userspace({})", self.target)
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        _sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        actions.push(Action::SetCore(core, self.target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn pins_and_retargets() {
        let mut g = Userspace::new(PState::new(7));
        assert_eq!(g.name(), "userspace(P7)");
        let mut actions = Vec::new();
        let s = UtilSample {
            busy_frac: 0.5,
            c0_frac: 0.5,
            window: SimDuration::from_millis(10),
        };
        g.on_core_sample(CoreId(0), s, SimTime::ZERO, &mut actions);
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::new(7))]);
        g.set_target(PState::new(2));
        actions.clear();
        g.on_core_sample(CoreId(0), s, SimTime::ZERO, &mut actions);
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::new(2))]);
    }
}
