//! The `ondemand` governor (Pallipadi & Starikovskiy, OLS'06).
//!
//! Samples CPU utilization every `sampling_interval` (10 ms in the
//! paper's setup) and maps it to a frequency:
//!
//! * utilization at or above `up_threshold` (95 %, the kernel's
//!   micro-accounting default) → **escalate**: step a quarter of the
//!   P-state range towards P0 per sample;
//! * otherwise → `f_next = f_min + load · (f_max − f_min)` (the
//!   od_update range mapping), which also decays idle cores straight
//!   to the bottom.
//!
//! The staircase escalation reproduces the governor dynamics the
//! paper *measures* (Fig 2): "the ondemand governor mostly raises the
//! V/F state in the middle or later part of the packet bursts" and
//! "does not immediately set the processor's P state to P0, even when
//! it detects an Rx burst" — the behaviour NMAP's early-boost exists
//! to fix. Together with the 10 ms cadence (orders of magnitude
//! slower than a burst's rise, §3.2) this is what produces the
//! paper's SLO violations at medium/high load.

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CoreId, PState};
use simcore::{SimDuration, SimTime};

/// Per-core utilization-driven DVFS.
///
/// # Examples
///
/// ```
/// use governors::{Ondemand, PStateGovernor, Action};
/// use cpusim::{CoreId, PState, ProcessorProfile};
/// use cpusim::core::UtilSample;
/// use simcore::{SimDuration, SimTime};
///
/// let table = ProcessorProfile::xeon_gold_6134().pstates;
/// let mut g = Ondemand::new(table, 8);
/// // A saturated core climbs towards P0 one staircase step per
/// // 10 ms sample (Fig 2's measured behaviour), reaching it in four.
/// let hot = UtilSample { busy_frac: 0.99, c0_frac: 1.0, window: SimDuration::from_millis(10) };
/// let mut last = PState::new(15);
/// for i in 0..4 {
///     let mut actions = Vec::new();
///     g.on_core_sample(CoreId(0), hot, SimTime::from_millis(10 * (i + 1)), &mut actions);
///     let Action::SetCore(_, p) = actions[0] else { unreachable!() };
///     assert!(p.is_faster_than(last));
///     last = p;
/// }
/// assert_eq!(last, PState::P0);
/// ```
#[derive(Debug, Clone)]
pub struct Ondemand {
    table: PStateTable,
    /// Current frequency believed per core (kept for introspection
    /// and NMAP's override bookkeeping).
    current: Vec<PState>,
    up_threshold: f64,
    interval: SimDuration,
}

impl Ondemand {
    /// Creates the governor with Linux micro-accounting defaults
    /// (95 % up-threshold, 10 ms sampling).
    pub fn new(table: PStateTable, cores: usize) -> Self {
        let slowest = table.slowest();
        Ondemand {
            table,
            current: vec![slowest; cores],
            up_threshold: 0.95,
            interval: SimDuration::from_millis(10),
        }
    }

    /// Overrides the sampling interval (ablation studies).
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Overrides the up-threshold.
    pub fn with_up_threshold(mut self, threshold: f64) -> Self {
        self.up_threshold = threshold;
        self
    }

    /// The ondemand decision for a utilization fraction, from the
    /// core's current state. Exposed for NMAP's CPU-utilization
    /// fallback mode.
    pub fn decide(&self, current: PState, util: f64) -> PState {
        let desired = if util >= self.up_threshold {
            PState::P0
        } else {
            // od_update's range mapping: f_min + load · (f_max − f_min).
            let f_min = self.table.frequency(self.table.slowest()) as f64;
            let f_max = self.table.frequency(PState::P0) as f64;
            let target = f_min + util.clamp(0.0, 1.0) * (f_max - f_min);
            self.table.state_for_max_frequency(target.ceil() as u64)
        };
        if desired.is_faster_than(current) {
            // Upward moves climb at most a quarter of the range per
            // sample — the measured staircase of Fig 2. Downward moves
            // are immediate.
            let step = ((self.table.len() - 1) as u8).div_ceil(4).max(1);
            let clamped = PState::new(current.index().saturating_sub(step));
            if desired.is_faster_than(clamped) {
                return clamped;
            }
        }
        desired
    }

    /// Records an externally applied P-state (used when NMAP
    /// temporarily overrides the governor, Algorithm 2 line 4).
    pub fn note_pstate(&mut self, core: CoreId, p: PState) {
        if core.0 < self.current.len() {
            self.current[core.0] = p;
        }
    }
}

impl PStateGovernor for Ondemand {
    fn name(&self) -> String {
        "ondemand".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        self.interval
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let next = self.decide(self.current[core.0], sample.busy_frac);
        self.current[core.0] = next;
        actions.push(Action::SetCore(core, next));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn gov() -> Ondemand {
        Ondemand::new(ProcessorProfile::xeon_gold_6134().pstates, 8)
    }

    fn sample(busy: f64) -> UtilSample {
        UtilSample {
            busy_frac: busy,
            c0_frac: 1.0,
            window: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn saturation_climbs_the_staircase_to_p0() {
        // Fig 2's measured behaviour: the governor raises V/F over
        // several samples, reaching P0 mid-burst, not immediately.
        let mut g = gov();
        let mut states = Vec::new();
        for i in 0..4 {
            let mut actions = Vec::new();
            g.on_core_sample(
                CoreId(0),
                sample(0.97),
                SimTime::from_millis(10 * i),
                &mut actions,
            );
            let Action::SetCore(_, p) = actions[0] else {
                panic!()
            };
            states.push(p);
        }
        assert_ne!(states[0], PState::P0, "no immediate jump to P0");
        for w in states.windows(2) {
            assert!(w[1].is_faster_than(w[0]), "each sample climbs");
        }
        assert_eq!(
            *states.last().unwrap(),
            PState::P0,
            "P0 reached in 4 samples"
        );
    }

    #[test]
    fn busy_but_unsaturated_stays_below_p0() {
        // §4.2's observation: ondemand usually lands below P0.
        let g = gov();
        let p = g.decide(PState::P0, 0.90);
        assert_ne!(p, PState::P0, "90% load must not reach P0");
        // 1.2 + 0.9·2.0 = 3.0 GHz → one-ish state below P0.
        assert!(p.index() <= 2, "got {p}");
    }

    #[test]
    fn idle_core_sinks_to_slowest() {
        let mut g = gov();
        let slowest = g.table.slowest();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.0), SimTime::ZERO, &mut actions);
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), slowest)]);
    }

    #[test]
    fn moderate_load_converges_to_range_mapped_state() {
        let mut g = gov();
        // Sustained 50% load: the staircase converges onto the range
        // mapping's 1.2 + 0.5·2.0 = 2.2 GHz target.
        let mut last = g.table.slowest();
        for i in 0..4 {
            let mut actions = Vec::new();
            g.on_core_sample(
                CoreId(0),
                sample(0.5),
                SimTime::from_millis(10 * i),
                &mut actions,
            );
            if let Some(Action::SetCore(_, p)) = actions.first() {
                last = *p;
            }
        }
        assert!(
            last != PState::P0 && last != g.table.slowest(),
            "got {last}"
        );
        assert!(g.table.frequency(last) <= 2_200_000_000);
        assert!(g.table.frequency(last) >= 1_900_000_000);
    }

    #[test]
    fn low_load_drops_to_slowest_immediately() {
        let mut g = gov();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.97), SimTime::ZERO, &mut actions);
        actions.clear();
        // Range mapping: 20% load → 1.6 GHz target, near the bottom.
        g.on_core_sample(
            CoreId(0),
            sample(0.02),
            SimTime::from_millis(10),
            &mut actions,
        );
        let Action::SetCore(_, p) = actions[0] else {
            panic!()
        };
        assert_eq!(p, g.table.slowest());
    }

    #[test]
    fn decide_is_monotone_in_utilization() {
        let g = gov();
        let mut prev = g.table.slowest();
        for i in 0..=10 {
            let util = i as f64 / 10.0;
            let p = g.decide(PState::P0, util);
            assert!(
                p == prev || p.is_faster_than(prev),
                "utilization up must not slow down (util {util})"
            );
            prev = p;
        }
        assert_eq!(g.decide(PState::P0, 1.0), PState::P0);
    }

    #[test]
    fn cores_are_independent() {
        let mut g = gov();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.99), SimTime::ZERO, &mut actions);
        g.on_core_sample(CoreId(1), sample(0.0), SimTime::ZERO, &mut actions);
        let Action::SetCore(c0, p0) = actions[0] else {
            panic!()
        };
        assert_eq!(c0, CoreId(0));
        assert!(p0.is_faster_than(g.table.slowest()), "core 0 climbed");
        assert_eq!(actions[1], Action::SetCore(CoreId(1), g.table.slowest()));
    }
}
