//! `schedutil` — the modern Linux default governor (beyond-paper
//! baseline).
//!
//! schedutil derives the target frequency from the scheduler's
//! utilization signal with headroom: `f = 1.25 · f_max · util`,
//! re-evaluated with a rate limit rather than a fixed sampling period.
//! It reacts faster than ondemand (per-wakeup updates, here modelled
//! at a 1 ms effective rate limit) but is still utilization-driven —
//! so it shares ondemand's structural blindness to the *front* of a
//! packet burst, just with a shorter lag. Including it shows NMAP's
//! advantage is not an artifact of ondemand's 10 ms period.

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CoreId, PState};
use simcore::{SimDuration, SimTime};

/// Utilization-with-headroom DVFS at a 1 ms rate limit.
#[derive(Debug, Clone)]
pub struct Schedutil {
    table: PStateTable,
    current: Vec<PState>,
    /// The 1.25 headroom factor ("map util to 80% of capacity").
    headroom: f64,
    rate_limit: SimDuration,
}

impl Schedutil {
    /// Creates the governor with kernel defaults.
    pub fn new(table: PStateTable, cores: usize) -> Self {
        let slowest = table.slowest();
        Schedutil {
            table,
            current: vec![slowest; cores],
            headroom: 1.25,
            rate_limit: SimDuration::from_millis(1),
        }
    }

    /// The frequency mapping: `f = headroom · f_max · util`.
    pub fn decide(&self, util: f64) -> PState {
        let f_max = self.table.frequency(PState::P0) as f64;
        let target = self.headroom * f_max * util.clamp(0.0, 1.0);
        self.table.state_for_max_frequency(target.ceil() as u64)
    }
}

impl PStateGovernor for Schedutil {
    fn name(&self) -> String {
        "schedutil".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        self.rate_limit
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let next = self.decide(sample.busy_frac);
        if next != self.current[core.0] {
            self.current[core.0] = next;
            actions.push(Action::SetCore(core, next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn gov() -> Schedutil {
        Schedutil::new(ProcessorProfile::xeon_gold_6134().pstates, 8)
    }

    fn sample(busy: f64) -> UtilSample {
        UtilSample {
            busy_frac: busy,
            c0_frac: 1.0,
            window: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn headroom_reaches_p0_at_80_percent() {
        let g = gov();
        // 1.25 · 3.2 GHz · 0.8 = 3.2 GHz → exactly P0.
        assert_eq!(g.decide(0.80), PState::P0);
        assert_eq!(g.decide(1.0), PState::P0);
    }

    #[test]
    fn maps_utilization_with_headroom() {
        let g = gov();
        // 1.25 · 3.2 · 0.5 = 2.0 GHz.
        let p = g.decide(0.5);
        assert!(g.table.frequency(p) <= 2_000_000_000);
        assert!(p != PState::P0 && p != g.table.slowest());
        assert_eq!(g.decide(0.0), g.table.slowest());
    }

    #[test]
    fn rate_limit_is_faster_than_ondemand() {
        let g = gov();
        assert!(g.sampling_interval() < SimDuration::from_millis(10));
    }

    #[test]
    fn emits_only_on_change() {
        let mut g = gov();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.5), SimTime::ZERO, &mut actions);
        assert_eq!(actions.len(), 1);
        actions.clear();
        g.on_core_sample(
            CoreId(0),
            sample(0.5),
            SimTime::from_millis(1),
            &mut actions,
        );
        assert!(actions.is_empty(), "unchanged decision emits nothing");
    }
}
