//! Governor and sleep-policy trait surface.
//!
//! The server calls the hooks below from its event loop; governors
//! respond with [`Action`]s the server applies through the
//! processor's DVFS domains. All hooks have no-op defaults so each
//! governor implements only the signals it consumes.

use cpusim::core::UtilSample;
use cpusim::{CState, CoreId, PState};
use napisim::PollClass;
use simcore::{SimDuration, SimTime};

/// Graceful-degradation counters a governor may expose (how often it
/// distrusted its own signal path and fell back to a safe policy).
/// Governors without a degradation path report all-zero stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Times any core entered the degraded (safe-fallback) state.
    pub degradations: u64,
    /// Times a degraded core recovered to normal operation.
    pub recoveries: u64,
    /// Cores currently degraded.
    pub degraded_cores: u64,
}

/// A P-state change requested by a governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Set one core's DVFS domain.
    SetCore(CoreId, PState),
    /// Set every core (chip-wide decisions like NCAP's boost).
    SetAll(PState),
}

/// A dynamic voltage/frequency governor.
///
/// Hooks are invoked by the server:
///
/// * [`on_core_sample`](PStateGovernor::on_core_sample) — once per
///   core per sampling interval, with busy and CC0-residency
///   fractions;
/// * [`on_ksoftirqd`](PStateGovernor::on_ksoftirqd) — when a core's
///   ksoftirqd wakes or sleeps;
/// * [`on_poll_batch`](PStateGovernor::on_poll_batch) — after every
///   NAPI poll batch, with its mode attribution (NMAP's Algorithm 1
///   feed);
/// * [`on_nic_window`](PStateGovernor::on_nic_window) — once per
///   sampling interval with the NIC-wide Rx packet count (NCAP's
///   feed);
/// * [`on_request_latency`](PStateGovernor::on_request_latency) —
///   per completed request (Parties' feed).
pub trait PStateGovernor {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> String;

    /// How often the server samples utilization and calls the
    /// periodic hooks. The paper uses 10 ms for ondemand and
    /// intel_powersave (§6.1).
    fn sampling_interval(&self) -> SimDuration {
        SimDuration::from_millis(10)
    }

    /// Periodic per-core utilization sample.
    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let _ = (core, sample, now, actions);
    }

    /// A core's ksoftirqd woke up (`awake = true`) or went back to
    /// sleep (`awake = false`).
    fn on_ksoftirqd(&mut self, core: CoreId, awake: bool, now: SimTime, actions: &mut Vec<Action>) {
        let _ = (core, awake, now, actions);
    }

    /// A NAPI poll batch completed on `core`: `rx_packets` packets
    /// were processed in the mode given by `class`.
    fn on_poll_batch(
        &mut self,
        core: CoreId,
        class: PollClass,
        rx_packets: u64,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let _ = (core, class, rx_packets, now, actions);
    }

    /// Periodic NIC-wide Rx packet count over the last sampling
    /// interval.
    fn on_nic_window(&mut self, rx_packets: u64, now: SimTime, actions: &mut Vec<Action>) {
        let _ = (rx_packets, now, actions);
    }

    /// A request completed with the given end-to-end latency
    /// (measured at the client).
    fn on_request_latency(
        &mut self,
        latency: SimDuration,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let _ = (latency, now, actions);
    }

    /// Periodic telemetry-bus tick: the server hands the governor a
    /// read-side view of the live timeline sampler (per-core
    /// utilization, NAPI mode, queue depths, online P99, power) once
    /// per timeline sample. This is the feature-vector feed for
    /// adaptive policies (PID / bandit governors); classic governors
    /// ignore it. Never invoked when timeline sampling is off.
    fn on_telemetry(
        &mut self,
        tap: &dyn simcore::TelemetryTap,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let _ = (tap, now, actions);
    }

    /// True if this governor has fallen back to its degraded safe
    /// policy on `core` (telemetry flag feed). Default: governors
    /// without a degradation path are never degraded.
    fn core_degraded(&self, core: CoreId) -> bool {
        let _ = core;
        false
    }

    /// Replays governor-internal events (e.g. NMAP's network
    /// interference notifications) into the trace buffer on the
    /// `governor` track. Default: nothing to replay.
    fn trace_into(&self, buf: &mut simcore::TraceBuffer) {
        let _ = buf;
    }

    /// Reports governor-internal totals into the metrics registry.
    /// Default: nothing to report.
    fn record_metrics(&self, m: &mut simcore::MetricsRegistry) {
        let _ = m;
    }

    /// Graceful-degradation counters. Default: no degradation path,
    /// all zeros.
    fn degradation(&self) -> DegradationStats {
        DegradationStats::default()
    }
}

/// A C-state (sleep) policy.
pub trait SleepPolicy {
    /// Human-readable policy name.
    fn name(&self) -> String;

    /// The core went idle at `now`; choose the C-state it enters.
    fn on_idle(&mut self, core: CoreId, now: SimTime) -> CState;

    /// The scheduler tick fired while the core has been idle for
    /// `idle_elapsed`; the policy may deepen the sleep state (this is
    /// how cpuidle governors re-decide on long idles — a shallow
    /// first pick is promoted once the idle proves long). Return
    /// `None` to stay put.
    fn on_tick(&mut self, core: CoreId, idle_elapsed: SimDuration, now: SimTime) -> Option<CState> {
        let _ = (core, idle_elapsed, now);
        None
    }

    /// The core woke at `now` (for idle-history bookkeeping).
    fn on_wake(&mut self, core: CoreId, now: SimTime) {
        let _ = (core, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl PStateGovernor for Noop {
        fn name(&self) -> String {
            "noop".into()
        }
    }

    #[test]
    fn default_hooks_do_nothing() {
        let mut g = Noop;
        let mut actions = Vec::new();
        g.on_ksoftirqd(CoreId(0), true, SimTime::ZERO, &mut actions);
        g.on_nic_window(100, SimTime::ZERO, &mut actions);
        g.on_request_latency(SimDuration::from_micros(5), SimTime::ZERO, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(g.sampling_interval(), SimDuration::from_millis(10));
    }
}
