//! The `conservative` governor: like ondemand, but steps gradually.
//!
//! §2.2: "the conservative governor gradually adjusts the next V/F
//! state by transitioning to a value near the current V/F state
//! (e.g., P1→P0 or P1→P2)."

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CoreId, PState};
use simcore::{SimDuration, SimTime};

/// Gradual utilization-driven DVFS.
#[derive(Debug, Clone)]
pub struct Conservative {
    table: PStateTable,
    current: Vec<PState>,
    up_threshold: f64,
    down_threshold: f64,
    interval: SimDuration,
}

impl Conservative {
    /// Creates the governor with Linux defaults (80 % / 20 %
    /// thresholds, 10 ms sampling, one-state steps).
    pub fn new(table: PStateTable, cores: usize) -> Self {
        let slowest = table.slowest();
        Conservative {
            table,
            current: vec![slowest; cores],
            up_threshold: 0.80,
            down_threshold: 0.20,
            interval: SimDuration::from_millis(10),
        }
    }
}

impl PStateGovernor for Conservative {
    fn name(&self) -> String {
        "conservative".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        self.interval
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let cur = self.current[core.0];
        let next = if sample.busy_frac > self.up_threshold {
            cur.faster()
        } else if sample.busy_frac < self.down_threshold {
            cur.slower(self.table.slowest())
        } else {
            cur
        };
        if next != cur {
            self.current[core.0] = next;
            actions.push(Action::SetCore(core, next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn gov() -> Conservative {
        Conservative::new(ProcessorProfile::xeon_gold_6134().pstates, 8)
    }

    fn sample(busy: f64) -> UtilSample {
        UtilSample {
            busy_frac: busy,
            c0_frac: 1.0,
            window: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn steps_one_state_at_a_time() {
        let mut g = gov();
        let slowest = g.table.slowest();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.95), SimTime::ZERO, &mut actions);
        assert_eq!(
            actions,
            vec![Action::SetCore(CoreId(0), PState::new(slowest.index() - 1))]
        );
    }

    #[test]
    fn needs_many_samples_to_reach_p0() {
        let mut g = gov();
        let n = g.table.len();
        let mut last = g.table.slowest();
        for i in 0..(n - 1) {
            let mut actions = Vec::new();
            g.on_core_sample(
                CoreId(0),
                sample(0.95),
                SimTime::from_millis(10 * i as u64),
                &mut actions,
            );
            let Action::SetCore(_, p) = actions[0] else {
                panic!()
            };
            assert_eq!(p, PState::new(last.index() - 1));
            last = p;
        }
        assert_eq!(last, PState::P0);
        // At P0 further hot samples emit nothing.
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.95), SimTime::from_secs(1), &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn stable_in_the_middle_band() {
        let mut g = gov();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(0.5), SimTime::ZERO, &mut actions);
        assert!(actions.is_empty(), "within thresholds → hold");
    }

    #[test]
    fn steps_down_on_low_load() {
        let mut g = gov();
        let mut actions = Vec::new();
        // Warm up one step.
        g.on_core_sample(CoreId(0), sample(0.95), SimTime::ZERO, &mut actions);
        actions.clear();
        g.on_core_sample(
            CoreId(0),
            sample(0.05),
            SimTime::from_millis(10),
            &mut actions,
        );
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), g.table.slowest())]);
    }
}
