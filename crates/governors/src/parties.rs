//! Parties (Chen et al., ASPLOS'19) — the long-term DVFS baseline of
//! §6.3 / Fig 16.
//!
//! Parties monitors tail latency and adjusts V/F by the *slack*
//! between the SLO and the measured latency, deciding every 500 ms
//! ("such feedback-based techniques typically have relatively long
//! decision-making intervals since they obtain tail response latency
//! from clients; Parties decides the V/F state every 500 ms").
//! The long interval is exactly why it misses sub-100 ms bursts.

use crate::traits::{Action, PStateGovernor};
use cpusim::pstate::PStateTable;
use cpusim::PState;
use simcore::{Cdf, SimDuration, SimTime};

/// Parties tunables.
#[derive(Debug, Clone, Copy)]
pub struct PartiesConfig {
    /// Decision interval (paper: 500 ms).
    pub interval: SimDuration,
    /// The application's SLO (P99 target).
    pub slo: SimDuration,
    /// Slack fraction above which the governor steps down
    /// (latency well under SLO → save power).
    pub step_down_slack: f64,
    /// Slack fraction below which it steps up.
    pub step_up_slack: f64,
}

impl PartiesConfig {
    /// Defaults matching the paper's description.
    pub fn new(slo: SimDuration) -> Self {
        PartiesConfig {
            interval: SimDuration::from_millis(500),
            slo,
            step_down_slack: 0.35,
            step_up_slack: 0.10,
        }
    }
}

/// The slack-feedback controller (applies one chip-wide step per
/// interval, as Parties does for its V/F resource).
pub struct Parties {
    config: PartiesConfig,
    table: PStateTable,
    current: PState,
    window: Cdf,
    next_decision: SimTime,
}

impl Parties {
    /// Creates the controller starting from the slowest state.
    pub fn new(table: PStateTable, config: PartiesConfig) -> Self {
        let current = table.slowest();
        Parties {
            config,
            table,
            current,
            window: Cdf::new(),
            next_decision: SimTime::ZERO + config.interval,
        }
    }

    /// The state the controller currently holds.
    pub fn current(&self) -> PState {
        self.current
    }
}

impl PStateGovernor for Parties {
    fn name(&self) -> String {
        "Parties".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        // Utilization samples are unused; run the hook at the decision
        // cadence so `on_request_latency` timing drives everything.
        self.config.interval
    }

    fn on_request_latency(
        &mut self,
        latency: SimDuration,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        self.window.record_duration(latency);
        if now < self.next_decision {
            return;
        }
        self.next_decision = now + self.config.interval;
        if self.window.is_empty() {
            return;
        }
        let p99 = self.window.p99();
        self.window = Cdf::new();
        let slo = self.config.slo.as_secs_f64();
        let slack = (slo - p99.as_secs_f64()) / slo;
        let next = if slack < self.config.step_up_slack {
            self.current.faster()
        } else if slack > self.config.step_down_slack {
            self.current.slower(self.table.slowest())
        } else {
            self.current
        };
        if next != self.current {
            self.current = next;
            actions.push(Action::SetAll(next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn parties() -> Parties {
        Parties::new(
            ProcessorProfile::xeon_gold_6134().pstates,
            PartiesConfig::new(SimDuration::from_millis(1)),
        )
    }

    fn feed(g: &mut Parties, latency_us: u64, t: SimTime, actions: &mut Vec<Action>) {
        g.on_request_latency(SimDuration::from_micros(latency_us), t, actions);
    }

    #[test]
    fn no_decision_before_interval() {
        let mut g = parties();
        let mut actions = Vec::new();
        for i in 0..100 {
            feed(&mut g, 5_000, SimTime::from_millis(i), &mut actions); // 5× SLO!
        }
        assert!(actions.is_empty(), "no reaction inside the 500 ms window");
    }

    #[test]
    fn slo_violation_steps_up_once_per_interval() {
        let mut g = parties();
        let slowest = g.table.slowest();
        let mut actions = Vec::new();
        for i in 0..=500 {
            feed(&mut g, 5_000, SimTime::from_millis(i), &mut actions);
        }
        assert_eq!(
            actions,
            vec![Action::SetAll(PState::new(slowest.index() - 1))],
            "one step per decision, not a jump to P0"
        );
    }

    #[test]
    fn comfortable_slack_steps_down() {
        let mut g = parties();
        // Start from a faster state so there is room to step down.
        g.current = PState::new(5);
        let mut actions = Vec::new();
        for i in 0..=500 {
            feed(&mut g, 100, SimTime::from_millis(i), &mut actions); // 10% of SLO
        }
        assert_eq!(actions, vec![Action::SetAll(PState::new(6))]);
    }

    #[test]
    fn in_band_latency_holds_state() {
        let mut g = parties();
        g.current = PState::new(5);
        let mut actions = Vec::new();
        for i in 0..=500 {
            feed(&mut g, 800, SimTime::from_millis(i), &mut actions); // slack 0.2
        }
        assert!(actions.is_empty());
    }

    #[test]
    fn reaction_takes_many_intervals_to_reach_p0() {
        // The Fig 16 phenomenon: from Pmin, reaching P0 takes
        // (n-1) × 500 ms — far longer than any burst.
        let mut g = parties();
        let steps = g.table.len() - 1;
        let mut actions = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..steps {
            for _ in 0..=500 {
                t += SimDuration::from_millis(1);
                feed(&mut g, 5_000, t, &mut actions);
            }
        }
        assert_eq!(g.current(), PState::P0);
        assert!(
            t >= SimTime::from_millis(500 * steps as u64),
            "needed at least {steps} intervals"
        );
    }
}
