//! The `performance` governor: statically the highest V/F state.
//!
//! The paper's latency floor and energy ceiling (§6.2): "the
//! performance governor always shows the shortest tail latency …
//! while showing the most energy consumption."

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::{CoreId, PState};
use simcore::SimTime;

/// Pins every core at P0.
///
/// # Examples
///
/// ```
/// use governors::{Performance, PStateGovernor};
/// use cpusim::{CoreId, PState};
/// use cpusim::core::UtilSample;
/// use simcore::{SimDuration, SimTime};
///
/// let mut g = Performance::new();
/// let mut actions = Vec::new();
/// let sample = UtilSample { busy_frac: 0.0, c0_frac: 0.0, window: SimDuration::from_millis(10) };
/// g.on_core_sample(CoreId(3), sample, SimTime::ZERO, &mut actions);
/// assert_eq!(actions, vec![governors::Action::SetCore(CoreId(3), PState::P0)]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Performance;

impl Performance {
    /// Creates the governor.
    pub fn new() -> Self {
        Performance
    }
}

impl PStateGovernor for Performance {
    fn name(&self) -> String {
        "performance".into()
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        _sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        // Re-asserting P0 every sample is free: the DVFS domain
        // no-ops when already there.
        actions.push(Action::SetCore(core, PState::P0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn always_requests_p0() {
        let mut g = Performance::new();
        let mut actions = Vec::new();
        for i in 0..4 {
            g.on_core_sample(
                CoreId(i),
                UtilSample {
                    busy_frac: 0.01 * i as f64,
                    c0_frac: 1.0,
                    window: SimDuration::from_millis(10),
                },
                SimTime::from_millis(10),
                &mut actions,
            );
        }
        assert_eq!(actions.len(), 4);
        for (i, a) in actions.iter().enumerate() {
            assert_eq!(*a, Action::SetCore(CoreId(i), PState::P0));
        }
    }
}
