//! The cpufreq `powersave` governor: statically the lowest V/F state.

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::{CoreId, PState};
use simcore::SimTime;

/// Pins every core at the slowest P-state.
#[derive(Debug, Clone, Copy)]
pub struct Powersave {
    slowest: PState,
}

impl Powersave {
    /// Creates the governor for a table whose slowest state is
    /// `slowest`.
    pub fn new(slowest: PState) -> Self {
        Powersave { slowest }
    }
}

impl PStateGovernor for Powersave {
    fn name(&self) -> String {
        "powersave".into()
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        _sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        actions.push(Action::SetCore(core, self.slowest));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn always_requests_slowest() {
        let mut g = Powersave::new(PState::new(15));
        let mut actions = Vec::new();
        g.on_core_sample(
            CoreId(0),
            UtilSample {
                busy_frac: 1.0, // even fully busy
                c0_frac: 1.0,
                window: SimDuration::from_millis(10),
            },
            SimTime::ZERO,
            &mut actions,
        );
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::new(15))]);
    }
}
