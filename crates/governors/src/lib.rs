//! # governors — power-management policies
//!
//! Every V/F (P-state) governor and sleep (C-state) policy the paper
//! evaluates, behind two small traits the server drives from
//! simulator hooks:
//!
//! **P-state governors** ([`PStateGovernor`]):
//!
//! * [`performance`] / [`powersave`] / [`userspace`] — the static
//!   cpufreq policies;
//! * [`ondemand`] — CPU-utilization sampling every 10 ms;
//! * [`conservative`] — gradual stepping variant;
//! * [`intel_pstate`] — `intel_powersave`, whose utilization input is
//!   CC0 *residency* (which is why it pins P0 under the `disable`
//!   sleep policy, as §6.2 observes);
//! * [`ncap`] — the software NCAP baseline (periodic NIC-load
//!   monitor, chip-wide boost);
//! * [`parties`] — the long-term latency-feedback baseline (500 ms
//!   slack controller).
//!
//! **Sleep policies** ([`SleepPolicy`]): [`sleep::MenuPolicy`] (Linux
//! menu governor), [`sleep::DisablePolicy`] and
//! [`sleep::C6OnlyPolicy`] (§5.2's `disable` / `c6only`).
//!
//! NMAP itself lives in the `nmap` crate and implements the same
//! trait.

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod conservative;
pub mod intel_pstate;
pub mod ncap;
pub mod ondemand;
pub mod parties;
pub mod performance;
pub mod powersave;
pub mod schedutil;
pub mod sleep;
pub mod traits;
pub mod userspace;

pub use conservative::Conservative;
pub use intel_pstate::IntelPowersave;
pub use ncap::{Ncap, NcapConfig};
pub use ondemand::Ondemand;
pub use parties::{Parties, PartiesConfig};
pub use performance::Performance;
pub use powersave::Powersave;
pub use schedutil::Schedutil;
pub use sleep::{C6OnlyPolicy, DisablePolicy, MenuPolicy};
pub use traits::{Action, DegradationStats, PStateGovernor, SleepPolicy};
pub use userspace::Userspace;
