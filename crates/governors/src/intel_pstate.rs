//! `intel_powersave` — the default governor of the `intel_pstate`
//! driver (§2.2).
//!
//! Same shape as ondemand, but the utilization input is the core's
//! **CC0 residency** rather than busy time. This reproduces the
//! interaction §6.2 calls out: with the `disable` sleep policy a core
//! never leaves CC0, the residency reads 100 %, and the governor pins
//! P0 — "intel_powersave always operates cores at P0 with disable
//! since it calculates the CPU utilization based on the residency
//! time at CC0."

use crate::traits::{Action, PStateGovernor};
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CoreId, PState};
use simcore::{SimDuration, SimTime};

/// CC0-residency-driven DVFS.
#[derive(Debug, Clone)]
pub struct IntelPowersave {
    table: PStateTable,
    current: Vec<PState>,
    setpoint: f64,
    interval: SimDuration,
}

impl IntelPowersave {
    /// Creates the governor (97 % busy setpoint as in the kernel's
    /// PID-era default, 10 ms sampling per §6.1).
    pub fn new(table: PStateTable, cores: usize) -> Self {
        let slowest = table.slowest();
        IntelPowersave {
            table,
            current: vec![slowest; cores],
            setpoint: 0.97,
            interval: SimDuration::from_millis(10),
        }
    }
}

impl PStateGovernor for IntelPowersave {
    fn name(&self) -> String {
        "intel_powersave".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        self.interval
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        // CC0 residency is the utilization proxy.
        let util = sample.c0_frac;
        let next = if util >= self.setpoint {
            PState::P0
        } else {
            let cur_freq = self.table.frequency(self.current[core.0]) as f64;
            let target = cur_freq * util / self.setpoint;
            self.table.state_for_max_frequency(target.ceil() as u64)
        };
        self.current[core.0] = next;
        actions.push(Action::SetCore(core, next));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn gov() -> IntelPowersave {
        IntelPowersave::new(ProcessorProfile::xeon_gold_6134().pstates, 8)
    }

    #[test]
    fn pins_p0_when_never_sleeping() {
        // The `disable` sleep-policy interaction: busy 10 %, but CC0
        // residency 100 % → P0 regardless.
        let mut g = gov();
        let mut actions = Vec::new();
        g.on_core_sample(
            CoreId(0),
            UtilSample {
                busy_frac: 0.10,
                c0_frac: 1.0,
                window: SimDuration::from_millis(10),
            },
            SimTime::ZERO,
            &mut actions,
        );
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::P0)]);
    }

    #[test]
    fn scales_down_when_cores_sleep() {
        // With menu/c6only, residency tracks busy time and the governor
        // behaves like ondemand.
        let mut g = gov();
        let mut actions = Vec::new();
        g.on_core_sample(
            CoreId(0),
            UtilSample {
                busy_frac: 0.10,
                c0_frac: 0.12,
                window: SimDuration::from_millis(10),
            },
            SimTime::ZERO,
            &mut actions,
        );
        let Action::SetCore(_, p) = actions[0] else {
            panic!()
        };
        assert_eq!(
            p,
            g.table.slowest(),
            "12% residency from Pmin → stay at Pmin"
        );
    }

    #[test]
    fn high_residency_from_fast_state_stays_fast() {
        let mut g = gov();
        let mut actions = Vec::new();
        let hot = UtilSample {
            busy_frac: 0.99,
            c0_frac: 0.99,
            window: SimDuration::from_millis(10),
        };
        g.on_core_sample(CoreId(0), hot, SimTime::ZERO, &mut actions);
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::P0)]);
    }
}
