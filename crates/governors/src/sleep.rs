//! Sleep-state (C-state) policies: `menu`, `disable`, `c6only`.
//!
//! §5.2 compares three policies under the performance governor:
//! `disable` (never sleep) costs +53.2 % energy vs `menu`, while
//! `c6only` (always the deepest state) saves 10.3 % — with no notable
//! P99 difference, because CC6's ~54 µs worst-case wake penalty is
//! negligible against millisecond SLOs.

use crate::traits::SleepPolicy;
use cpusim::{CState, CoreId};
use simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Never sleep: the core idles in CC0 with clocks running.
#[derive(Debug, Clone, Copy, Default)]
pub struct DisablePolicy;

impl DisablePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        DisablePolicy
    }
}

impl SleepPolicy for DisablePolicy {
    fn name(&self) -> String {
        "disable".into()
    }

    fn on_idle(&mut self, _core: CoreId, _now: SimTime) -> CState {
        CState::C0
    }
}

/// Always enter the deepest state (CC6) when idle.
#[derive(Debug, Clone, Copy, Default)]
pub struct C6OnlyPolicy;

impl C6OnlyPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        C6OnlyPolicy
    }
}

impl SleepPolicy for C6OnlyPolicy {
    fn name(&self) -> String {
        "c6only".into()
    }

    fn on_idle(&mut self, _core: CoreId, _now: SimTime) -> CState {
        CState::C6
    }
}

/// The Linux `menu` idle governor (Pallipadi et al., OLS'07):
/// predicts the upcoming idle interval from recent history and picks
/// the deepest C-state whose target residency fits the prediction.
///
/// Our prediction is the **minimum** of the last eight observed idle
/// intervals — a faithful simplification of menu's conservatism: its
/// correction factors shrink the estimate whenever recent sleeps were
/// cut short, so one short idle in the recent past keeps the governor
/// shallow. This is why real menu under-sleeps inside bursts (and why
/// §5.2's `c6only` saves ~10% over it).
#[derive(Debug, Clone)]
pub struct MenuPolicy {
    history: Vec<VecDeque<SimDuration>>,
    idle_started: Vec<Option<SimTime>>,
    c1_target: SimDuration,
    c6_target: SimDuration,
}

impl MenuPolicy {
    /// History samples kept per core.
    const HISTORY: usize = 8;

    /// Creates the policy for `cores` cores with typical Intel target
    /// residencies (CC1: 2 µs, CC6: 100 µs).
    pub fn new(cores: usize) -> Self {
        MenuPolicy {
            history: vec![VecDeque::with_capacity(Self::HISTORY); cores],
            idle_started: vec![None; cores],
            c1_target: SimDuration::from_micros(2),
            c6_target: SimDuration::from_micros(100),
        }
    }

    fn predict(&self, core: CoreId) -> Option<SimDuration> {
        self.history[core.0].iter().copied().min()
    }
}

impl SleepPolicy for MenuPolicy {
    fn name(&self) -> String {
        "menu".into()
    }

    fn on_idle(&mut self, core: CoreId, now: SimTime) -> CState {
        self.idle_started[core.0] = Some(now);
        match self.predict(core) {
            // No history yet: be conservative, shallow sleep.
            None => CState::C1,
            Some(predicted) => {
                if predicted >= self.c6_target {
                    CState::C6
                } else if predicted >= self.c1_target {
                    CState::C1
                } else {
                    CState::C0
                }
            }
        }
    }

    fn on_tick(
        &mut self,
        core: CoreId,
        idle_elapsed: SimDuration,
        _now: SimTime,
    ) -> Option<CState> {
        // The idle outlived the deep state's target residency: the
        // history-based prediction was wrong, promote (real menu
        // re-decides at every tick with the observed idle dominating).
        (idle_elapsed >= self.c6_target).then(|| {
            // Teach the history so the next prediction remembers this
            // long idle even if it is interrupted soon after.
            let h = &mut self.history[core.0];
            if h.len() == Self::HISTORY {
                h.pop_front();
            }
            h.push_back(idle_elapsed);
            CState::C6
        })
    }

    fn on_wake(&mut self, core: CoreId, now: SimTime) {
        if let Some(start) = self.idle_started[core.0].take() {
            let h = &mut self.history[core.0];
            if h.len() == Self::HISTORY {
                h.pop_front();
            }
            h.push_back(now.saturating_since(start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disable_never_sleeps() {
        let mut p = DisablePolicy::new();
        assert_eq!(p.on_idle(CoreId(0), SimTime::ZERO), CState::C0);
    }

    #[test]
    fn c6only_always_deepest() {
        let mut p = C6OnlyPolicy::new();
        assert_eq!(p.on_idle(CoreId(0), SimTime::ZERO), CState::C6);
    }

    fn feed_idles(p: &mut MenuPolicy, core: CoreId, idle: SimDuration, n: usize) {
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            p.on_idle(core, t);
            t += idle;
            p.on_wake(core, t);
            t += SimDuration::from_micros(10); // busy gap
        }
    }

    #[test]
    fn menu_learns_long_idles_choose_c6() {
        let mut p = MenuPolicy::new(1);
        feed_idles(&mut p, CoreId(0), SimDuration::from_millis(5), 8);
        assert_eq!(p.on_idle(CoreId(0), SimTime::from_secs(1)), CState::C6);
    }

    #[test]
    fn menu_learns_short_idles_choose_shallow() {
        let mut p = MenuPolicy::new(1);
        feed_idles(&mut p, CoreId(0), SimDuration::from_micros(10), 8);
        assert_eq!(p.on_idle(CoreId(0), SimTime::from_secs(1)), CState::C1);
    }

    #[test]
    fn menu_first_idle_is_conservative() {
        let mut p = MenuPolicy::new(1);
        assert_eq!(p.on_idle(CoreId(0), SimTime::ZERO), CState::C1);
    }

    #[test]
    fn menu_adapts_when_pattern_changes() {
        let mut p = MenuPolicy::new(1);
        feed_idles(&mut p, CoreId(0), SimDuration::from_millis(2), 8);
        assert_eq!(p.on_idle(CoreId(0), SimTime::from_secs(1)), CState::C6);
        p.on_wake(CoreId(0), SimTime::from_secs(1)); // instant wake
                                                     // A run of tiny idles pushes the prediction down.
        feed_idles(&mut p, CoreId(0), SimDuration::from_micros(5), 8);
        assert_eq!(p.on_idle(CoreId(0), SimTime::from_secs(2)), CState::C1);
    }

    #[test]
    fn menu_cores_learn_independently() {
        let mut p = MenuPolicy::new(2);
        feed_idles(&mut p, CoreId(0), SimDuration::from_millis(5), 8);
        assert_eq!(p.on_idle(CoreId(0), SimTime::from_secs(1)), CState::C6);
        assert_eq!(p.on_idle(CoreId(1), SimTime::from_secs(1)), CState::C1);
    }
}
