//! # nmap-repro — reproduction of NMAP (MICRO'21)
//!
//! *NMAP: Power Management Based on Network Packet Processing Mode
//! Transition for Latency-Critical Workloads* — Kang et al.,
//! MICRO 2021.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`simcore`] — discrete-event simulation engine;
//! * [`cpusim`] — P-states, DVFS with re-transition latency,
//!   C-states, power/energy (RAPL);
//! * [`netsim`] — multi-queue NIC, RSS, interrupt moderation;
//! * [`napisim`] — the NAPI interrupt/polling state machine and
//!   ksoftirqd handoff rules;
//! * [`appsim`] — memcached/nginx service models and the full
//!   client-server testbed;
//! * [`workload`] — bursty open-loop load generation;
//! * [`governors`] — every baseline policy (ondemand,
//!   intel_pstate, menu, NCAP, Parties, …);
//! * [`nmap`] — the paper's contribution: the Mode Transition
//!   Monitor, Decision Engine, NMAP-simpl, and threshold profiler;
//! * [`experiments`] — the harness regenerating every table and
//!   figure (`cargo run --release -p experiments --bin repro -- all`).
//!
//! # Quickstart
//!
//! ```
//! use appsim::{AppModel, Testbed, TestbedConfig};
//! use governors::{MenuPolicy, Performance};
//! use simcore::{SimDuration, SimTime, Simulator};
//! use workload::LoadSpec;
//!
//! let cfg = TestbedConfig::new(
//!     AppModel::memcached(),
//!     LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
//! );
//! let mut sim = Simulator::new();
//! let mut tb = Testbed::new(cfg, Box::new(Performance::new()), Box::new(MenuPolicy::new(8)), &mut sim);
//! sim.run_until(&mut tb, SimTime::from_millis(300));
//! println!("p99 = {:?}", tb.client.latencies_mut().p99());
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub use appsim;
pub use cpusim;
pub use experiments;
pub use governors;
pub use napisim;
pub use netsim;
pub use nmap;
pub use simcore;
pub use workload;
