//! Golden-trace snapshots: quick-scale metrics per governor, pinned
//! as text fixtures under `tests/golden/`.
//!
//! Any change to event ordering, RNG streams, or model arithmetic
//! shows up here as a diff against the pinned run. The fixtures are
//! exact (floats are pinned by bit pattern), so they are
//! platform-pinned in the same sense the determinism suite is: the
//! same binary on the same target reproduces them bit-for-bit.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use experiments::{GovernorKind, RunConfig, RunResult, Scale};
use nmap::NmapConfig;
use simcore::SimDuration;
use workload::{AppKind, LoadSpec};

/// Every governor kind, with a filesystem-safe slug.
fn every_governor() -> Vec<(&'static str, GovernorKind)> {
    vec![
        ("performance", GovernorKind::Performance),
        ("powersave", GovernorKind::Powersave),
        ("userspace7", GovernorKind::Userspace(7)),
        ("ondemand", GovernorKind::Ondemand),
        ("conservative", GovernorKind::Conservative),
        ("schedutil", GovernorKind::Schedutil),
        ("intel_powersave", GovernorKind::IntelPowersave),
        ("nmap_simpl", GovernorKind::NmapSimpl),
        ("nmap", GovernorKind::Nmap(NmapConfig::new(32, 1.0))),
        ("nmap_online", GovernorKind::NmapOnline),
        ("ncap", GovernorKind::Ncap(50_000.0)),
        ("ncap_menu", GovernorKind::NcapMenu(50_000.0)),
        ("parties", GovernorKind::Parties),
    ]
}

fn golden_load() -> LoadSpec {
    LoadSpec::custom(40_000.0, SimDuration::from_millis(100), 0.4, 0.3)
}

/// Renders the metrics a fixture pins. Floats carry both a readable
/// value and the exact bit pattern; the bits are what must match.
fn render(r: &RunResult) -> String {
    format!(
        "governor={}\n\
         sleep={}\n\
         sent={}\n\
         received={}\n\
         p50_ns={}\n\
         p99_ns={}\n\
         frac_above_slo={} bits={:#018x}\n\
         energy_j={} bits={:#018x}\n\
         rx_dropped={}\n\
         dvfs_transitions={}\n\
         c6_entries={}\n",
        r.governor,
        r.sleep,
        r.sent,
        r.received,
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.frac_above_slo,
        r.frac_above_slo.to_bits(),
        r.energy_j,
        r.energy_j.to_bits(),
        r.rx_dropped,
        r.dvfs_transitions,
        r.c6_entries,
    )
}

fn fixture_path(slug: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("quick_{slug}.txt"))
}

#[test]
fn quick_scale_metrics_match_golden_fixtures() {
    let governors = every_governor();
    let configs: Vec<RunConfig> = governors
        .iter()
        .map(|&(_, g)| {
            RunConfig::new(AppKind::Memcached, golden_load(), g, Scale::Quick).with_seed(7)
        })
        .collect();
    let results = experiments::run_many(configs);

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for ((slug, _), result) in governors.iter().zip(&results) {
        let rendered = render(result);
        let path = fixture_path(slug);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); regenerate with \
                 UPDATE_GOLDEN=1 cargo test --test golden",
                path.display()
            )
        });
        if rendered != expected {
            failures.push(format!(
                "{slug}: drift against {}\n--- expected\n{expected}--- actual\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden snapshots drifted ({} of {}):\n{}",
        failures.len(),
        governors.len(),
        failures.join("\n")
    );
}

/// The `breakdown` artifact (latency attribution + SLO watchdog) is
/// pinned byte-for-byte: stage shares are derived from every request's
/// exact integer decomposition, so any drift in event ordering or the
/// attribution cursor logic shows up here immediately.
/// The `timeline` artifact (telemetry sparklines) is pinned
/// byte-for-byte: the sparkline columns are a pure function of the
/// sampled gauge series, so any drift in the sampler's cadence,
/// decimation, or the gauges' integer encodings shows up here.
#[cfg(feature = "obs")]
#[test]
fn timeline_artifact_matches_golden_fixture() {
    let reports = experiments::figures::generate("timeline", Scale::Quick);
    assert_eq!(reports.len(), 1);
    let rendered = reports[0].to_string();
    let path = fixture_path("timeline");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "timeline artifact drifted against {}",
        path.display()
    );
}

#[cfg(feature = "obs")]
#[test]
fn breakdown_artifact_matches_golden_fixture() {
    let reports = experiments::figures::generate("breakdown", Scale::Quick);
    assert_eq!(reports.len(), 1);
    let rendered = reports[0].to_string();
    let path = fixture_path("breakdown");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "breakdown artifact drifted against {}",
        path.display()
    );
}
