//! Crash-safe sweep supervision, end to end:
//!
//! * an interrupted sweep (half its cells checkpointed, torn tail
//!   bytes on the file) resumes without re-running finished cells and
//!   produces a byte-identical artifact;
//! * per-cell event budgets abort runaway cells with a typed error
//!   and quarantine them without retry, while the rest of the sweep
//!   completes;
//! * quarantined cells surface placeholder rows, never panics.
//!
//! The real process-kill rehearsal (SIGTERM on `repro --checkpoint`,
//! resume, `diff` the artifacts) runs in CI — see
//! `.github/workflows/ci.yml`.

use experiments::{cell_key, GovernorKind, RunConfig, Scale, Supervisor, SupervisorPolicy};
use simcore::{SimDuration, StepBudget};
use std::io::Write;
use workload::{AppKind, LoadSpec};

fn sweep_configs() -> Vec<RunConfig> {
    let load = LoadSpec::custom(40_000.0, SimDuration::from_millis(100), 0.4, 0.3);
    let mut configs = Vec::new();
    for gov in [
        GovernorKind::Performance,
        GovernorKind::Ondemand,
        GovernorKind::NmapSimpl,
    ] {
        for seed in [7u64, 11] {
            configs.push(
                RunConfig {
                    warmup: SimDuration::from_millis(20),
                    duration: SimDuration::from_millis(60),
                    ..RunConfig::new(AppKind::Memcached, load, gov, Scale::Quick)
                }
                .with_seed(seed),
            );
        }
    }
    configs
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nmap-supervisor-{name}-{}", std::process::id()));
    p
}

/// A sweep killed mid-flight resumes from its checkpoint: finished
/// cells are not re-run, torn tail bytes from the crash are
/// tolerated, and the merged artifact is byte-identical to an
/// uninterrupted sweep's.
#[test]
fn interrupted_sweep_resumes_byte_identically() {
    let configs = sweep_configs();

    // The uninterrupted reference artifact (no checkpoint at all).
    let reference = Supervisor::new().run_many(configs.clone());
    let reference_artifact = format!("{reference:#?}");

    // "Crash" after the first half: a supervisor checkpoints three
    // cells and the process dies (we just stop driving it), leaving a
    // torn partial line behind as a real SIGKILL mid-write would.
    let ckpt = tmp_path("resume");
    let _ = std::fs::remove_file(&ckpt);
    {
        let sup = Supervisor::new()
            .with_checkpoint(&ckpt)
            .expect("open checkpoint");
        let partial = sup.run_many(configs[..3].to_vec());
        assert_eq!(partial.len(), 3);
        assert_eq!(sup.cells_resumed(), 0, "fresh checkpoint resumes nothing");
    }
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&ckpt)
            .expect("reopen checkpoint");
        // No trailing newline: a torn write, not a valid record.
        write!(f, "{{\"kind\":\"cell\",\"key\":\"dead").expect("tear the tail");
    }

    // Resume: the full sweep against the same checkpoint.
    let sup = Supervisor::new()
        .with_checkpoint(&ckpt)
        .expect("reopen checkpoint");
    let resumed = sup.run_many(configs.clone());
    assert_eq!(
        sup.cells_resumed(),
        3,
        "the three finished cells must be served from the checkpoint"
    );
    assert_eq!(
        format!("{resumed:#?}"),
        reference_artifact,
        "resumed sweep must merge to a byte-identical artifact"
    );

    // Idempotence: resuming a *finished* sweep re-runs nothing.
    let sup = Supervisor::new()
        .with_checkpoint(&ckpt)
        .expect("reopen checkpoint");
    let replay = sup.run_many(configs.clone());
    assert_eq!(sup.cells_resumed(), configs.len());
    assert_eq!(format!("{replay:#?}"), reference_artifact);

    let _ = std::fs::remove_file(&ckpt);
}

/// A per-cell event budget aborts runaway cells with a typed
/// `BudgetExceeded` — deterministic, so no retry — and quarantines
/// them; the sweep still completes with placeholder rows.
#[test]
fn event_budget_quarantines_runaway_cells_but_sweep_completes() {
    let configs = sweep_configs();
    let n = configs.len();
    let sup = Supervisor::new().with_policy(SupervisorPolicy {
        // Far too few events for even a Quick window: every cell
        // exceeds the budget. Retrying a deterministic overrun would
        // reproduce it, so each cell must be quarantined on attempt 1.
        budget: StepBudget::unlimited().with_max_events(500),
        ..SupervisorPolicy::default()
    });
    let results = sup.run_many(configs);
    assert_eq!(results.len(), n, "sweep must complete around quarantines");
    let quarantined = sup.quarantined();
    assert_eq!(quarantined.len(), n, "every cell overran the budget");
    for q in &quarantined {
        assert_eq!(q.attempts, 1, "budget overruns are not retried");
        assert!(
            q.error.contains("budget"),
            "quarantine must carry the typed reason: {}",
            q.error
        );
    }
    for r in &results {
        assert_eq!(r.sent, 0, "placeholder rows are all-zero");
    }
}

/// Quarantine records key cells by their config hash, and the hash
/// tracks the fields that change results — two sweeps over the same
/// grid hit the same keys.
#[test]
fn checkpoint_keys_are_stable_across_processes_in_spirit() {
    let a: Vec<u64> = sweep_configs().iter().map(cell_key).collect();
    let b: Vec<u64> = sweep_configs().iter().map(cell_key).collect();
    assert_eq!(a, b, "cell keys must be a pure function of the config");
    let mut sorted = a.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), a.len(), "distinct cells get distinct keys");
}
