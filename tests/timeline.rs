//! Telemetry-timeline determinism: every governor's timeline must be
//! byte-identical across repeats, and a thread-parallel sweep must
//! reproduce the serial one exactly — the CSV rendering is the
//! comparison surface because it is what artifacts and CI diff.

#![cfg(feature = "obs")]

use experiments::{GovernorKind, RunConfig, RunResult, Scale};
use nmap::NmapConfig;
use simcore::{Gauge, SimDuration, TimelineConfig};
use workload::{AppKind, LoadSpec};

/// Every governor kind, same list the golden suite pins.
fn every_governor() -> Vec<GovernorKind> {
    vec![
        GovernorKind::Performance,
        GovernorKind::Powersave,
        GovernorKind::Userspace(7),
        GovernorKind::Ondemand,
        GovernorKind::Conservative,
        GovernorKind::Schedutil,
        GovernorKind::IntelPowersave,
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(NmapConfig::new(32, 1.0)),
        GovernorKind::NmapOnline,
        GovernorKind::Ncap(50_000.0),
        GovernorKind::NcapMenu(50_000.0),
        GovernorKind::Parties,
    ]
}

fn cfg(gov: GovernorKind) -> RunConfig {
    RunConfig::new(
        AppKind::Memcached,
        LoadSpec::custom(40_000.0, SimDuration::from_millis(100), 0.4, 0.3),
        gov,
        Scale::Quick,
    )
    .with_seed(7)
}

fn timelines_csv(results: &[RunResult]) -> Vec<String> {
    results.iter().map(|r| r.timeline.to_csv()).collect()
}

#[test]
fn parallel_sweep_timelines_match_serial() {
    let configs: Vec<RunConfig> = every_governor().into_iter().map(cfg).collect();
    let serial: Vec<RunResult> = configs.iter().cloned().map(experiments::run).collect();
    let parallel = experiments::run_many(configs);
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(!s.timeline.is_empty(), "{}: no timeline", s.governor);
        assert_eq!(
            s.timeline, p.timeline,
            "{}: serial and parallel timelines must be identical",
            s.governor
        );
    }
    assert_eq!(
        timelines_csv(&serial),
        timelines_csv(&parallel),
        "CSV renderings must be byte-identical"
    );
}

#[test]
fn same_seed_timelines_are_byte_identical() {
    let configs: Vec<RunConfig> = every_governor().into_iter().map(cfg).collect();
    let a = timelines_csv(&experiments::run_many(configs.clone()));
    let b = timelines_csv(&experiments::run_many(configs));
    assert_eq!(a, b, "same-seed timeline CSVs must reproduce exactly");
}

#[test]
fn timelines_stay_bounded_and_uniform() {
    for gov in every_governor() {
        let r = experiments::run(cfg(gov));
        let t = &r.timeline;
        assert!(!t.is_empty(), "{}: no timeline recorded", r.governor);
        assert!(t.rows() <= 512, "{}: cap exceeded", r.governor);
        assert_eq!(
            t.interval_ns,
            t.base_interval_ns << t.decimations,
            "{}: interval doubles once per decimation",
            r.governor
        );
        // Retained rows stay uniformly spaced at the final interval
        // even after decimation.
        for w in t.times_ns.windows(2) {
            assert_eq!(
                w[1] - w[0],
                t.interval_ns,
                "{}: rows must be uniformly spaced",
                r.governor
            );
        }
        // Gauges carry live signal, not zero padding.
        assert!(
            t.series_sum(Gauge::PowerMw).iter().any(|&v| v > 0),
            "{}: power series empty",
            r.governor
        );
        assert!(
            t.series_max(Gauge::UtilPermille).iter().any(|&v| v > 0),
            "{}: utilization series empty",
            r.governor
        );
    }
}

#[test]
fn disabling_the_sampler_leaves_the_run_unchanged() {
    let on = experiments::run(cfg(GovernorKind::Ondemand));
    let off = experiments::run(cfg(GovernorKind::Ondemand).with_timeline(TimelineConfig::OFF));
    assert!(!on.timeline.is_empty() && off.timeline.is_empty());
    // Sampling is read-only: the simulated trajectory must not move.
    assert_eq!(on.sent, off.sent);
    assert_eq!(on.received, off.received);
    assert_eq!(on.p99, off.p99);
    assert_eq!(on.energy_j.to_bits(), off.energy_j.to_bits());
    assert_eq!(on.dvfs_transitions, off.dvfs_transitions);
    assert_eq!(on.c6_entries, off.c6_entries);
}
