//! Chaos soak: every governor under the three composed fault
//! schedules (`experiments::figures::chaos`), asserting the
//! robustness contract end to end:
//!
//! * every run's conservation audit balances (asserted inside
//!   [`experiments::run`] with the `audit` feature), with wire drops
//!   explicitly accounted in the `PacketsFaultDropped` ledger;
//! * no governor wedges into silent request loss — everything sent is
//!   delivered, explicitly dropped, or still in flight at the cut;
//! * NMAP's graceful degradation engages under NAPI-signal starvation
//!   and re-engages hysteretically when signals resume;
//! * the fault-onset → SLO-recovery join covers every watchdog
//!   episode; and
//! * the whole soak is deterministic: the same seed and plan
//!   reproduce bit-identically, serial or through `run_many`.
//!
//! The rendered artifact is pinned as `tests/golden/quick_chaos.txt`
//! (regenerate with `UPDATE_GOLDEN=1 cargo test --test chaos`).
#![cfg(feature = "fault")]

use experiments::figures::chaos::{all_governors, plans, render, sweep};
use experiments::{run, RunResult, Scale, Supervisor};
use workload::AppKind;

/// One shared sweep: 3 schedules × 13 governors. Everything below
/// asserts on (or re-runs cells of) this single result set.
fn soak() -> &'static [RunResult] {
    use std::sync::OnceLock;
    static SOAK: OnceLock<Vec<RunResult>> = OnceLock::new();
    SOAK.get_or_init(|| sweep(Scale::Quick, &Supervisor::new()))
}

fn cells() -> Vec<(&'static str, &'static str, &'static RunResult)> {
    let governors = all_governors(AppKind::Memcached);
    let mut out = Vec::new();
    for (pi, (plan_label, _)) in plans().iter().enumerate() {
        for (gi, (gov_label, _)) in governors.iter().enumerate() {
            out.push((*plan_label, *gov_label, &soak()[pi * governors.len() + gi]));
        }
    }
    out
}

/// Faults actually fire in every cell, and no governor loses a request
/// to a wedged state: sent = received + explicitly-accounted drops +
/// a small in-flight tail at the simulation cut.
#[test]
fn no_silent_request_loss_under_any_schedule() {
    for (plan, gov, r) in cells() {
        assert!(
            r.faults.total() > 0,
            "{plan}/{gov}: schedule injected nothing"
        );
        assert!(r.received > 0, "{plan}/{gov}: no responses at all");
        let accounted = r.received + r.faults.wire_dropped();
        assert!(
            accounted <= r.sent,
            "{plan}/{gov}: delivered + dropped exceeds sent"
        );
        // Unaccounted = sent − received − wire-fault drops. What
        // remains is bounded by NIC ring drops (≤ rx_dropped packets)
        // plus the requests still in flight when the run was cut.
        let unaccounted = r.sent - accounted;
        let in_flight_allowance = 64;
        assert!(
            unaccounted <= r.rx_dropped + in_flight_allowance,
            "{plan}/{gov}: {unaccounted} requests vanished (sent {}, received {}, \
             fault-dropped {}, nic-dropped {})",
            r.sent,
            r.received,
            r.faults.wire_dropped(),
            r.rx_dropped,
        );
    }
}

/// The recovery join is total: every watchdog episode is either
/// attributed to a fault window or explicitly unattributed.
#[test]
fn recovery_join_covers_every_episode() {
    for (plan, gov, r) in cells() {
        let rec = &r.fault_recovery;
        assert_eq!(
            rec.attributed + rec.unattributed,
            u64::from(r.watchdog.episodes),
            "{plan}/{gov}: recovery join lost episodes"
        );
        assert_eq!(
            rec.recovered + rec.unrecovered,
            rec.attributed,
            "{plan}/{gov}: attributed episodes must split recovered/unrecovered"
        );
        if rec.recovered > 0 {
            assert!(rec.max_recovery_ns >= rec.mean_recovery_ns);
            assert!(rec.mean_recovery_ns > 0);
        }
    }
}

/// The kernel schedule wedges the notification path: 100 ms of total
/// signal starvation, then 180 ms of stuck stale replays claiming
/// mid-burst polling while cores idle. NMAP's graceful-degradation
/// watchdog must engage its utilization fallback under the wedge and
/// re-engage NAPI-driven operation once real signals resume (the last
/// window closes 380 ms before the run ends).
#[test]
fn nmap_degrades_and_recovers_under_signal_starvation() {
    for (plan, gov, r) in cells() {
        if plan != "kernel" {
            continue;
        }
        if gov == "nmap" || gov == "nmap_online" {
            assert!(
                r.degradation.degradations > 0,
                "{gov}: signal starvation must engage the fallback"
            );
            assert!(
                r.degradation.recoveries > 0,
                "{gov}: fallback must hand back to NAPI mode after the window"
            );
            assert_eq!(
                r.degradation.degraded_cores, 0,
                "{gov}: no core may still be degraded at the end of the run"
            );
        } else {
            assert_eq!(
                r.degradation.degradations, 0,
                "{gov}: only NMAP variants have a degradation machine"
            );
        }
    }
}

/// Same seed + same plan ⇒ byte-identical, and `run_many` (which the
/// sweep uses) matches serial `run` exactly — the fault plan travels
/// with the config into worker threads.
#[test]
fn chaos_runs_are_deterministic_serial_and_parallel() {
    use experiments::{GovernorKind, RunConfig};
    use simcore::SimDuration;
    use workload::LoadSpec;
    let load = LoadSpec::custom(30_000.0, SimDuration::from_millis(100), 0.4, 0.3);
    for (pi, gov, gov_label) in [
        (1usize, GovernorKind::Ondemand, "ondemand"),
        (0usize, GovernorKind::Performance, "performance"),
    ] {
        let plan = plans().swap_remove(pi).1;
        let cfg = RunConfig::new(AppKind::Memcached, load, gov, Scale::Quick)
            .with_seed(7)
            .with_fault_plan(plan);
        let serial = run(cfg.clone());
        let again = run(cfg);
        assert_eq!(
            serial, again,
            "{gov_label}: same seed + same plan must reproduce bit-identically"
        );
        let governors = all_governors(AppKind::Memcached);
        let gi = governors
            .iter()
            .position(|(label, _)| *label == gov_label)
            .unwrap();
        assert_eq!(
            soak()[pi * governors.len() + gi],
            serial,
            "{gov_label}: run_many sweep cell must match serial run"
        );
    }
}

/// The rendered artifact is pinned byte-for-byte, like the per-governor
/// golden fixtures: any drift in fault draws, event ordering, or the
/// recovery join shows up here immediately.
#[test]
fn chaos_artifact_matches_golden_fixture() {
    let rendered = render(soak()).to_string();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_chaos.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test chaos",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "chaos artifact drifted against {}",
        path.display()
    );
}
