//! Property-based tests on the core data structures and state
//! machines: statistics consistency, DVFS protocol safety, NAPI
//! counter conservation, ring/RSS behaviour, arrival monotonicity,
//! and whole-run determinism.
//!
//! Inputs are drawn through `simcore::check::forall`, the local
//! deterministic property harness: every case derives its own RNG
//! stream from `(label, case index)`, so failures name a single
//! reproducible case.

use cpusim::dvfs::{CompletionResult, CoreDvfs, TransitionOutcome};
use cpusim::{PState, ProcessorProfile};
use experiments::{GovernorKind, RunConfig, Scale};
use napisim::{NapiContext, PollVerdict, ProcContext, StackParams};
use netsim::{DescRing, FlowId, RssHasher};
use simcore::check::forall;
use simcore::{Cdf, Histogram, RngStream, RunningStats, SimDuration, SimTime};
use workload::{AppKind, ArrivalProcess, BurstyArrivals, LoadSpec};

/// `lo + below(hi - lo)` — a uniform draw in `[lo, hi)`.
fn range(rng: &mut RngStream, lo: u64, hi: u64) -> u64 {
    lo + rng.below(hi - lo)
}

/// The log-bucketed histogram's quantiles stay within its relative
/// error bound of the exact CDF's.
#[test]
fn histogram_tracks_exact_cdf() {
    forall("histogram vs cdf", 64, |rng| {
        let n = range(rng, 1, 500);
        let samples: Vec<u64> = (0..n).map(|_| range(rng, 1, 10_000_000_000)).collect();
        let mut h = Histogram::new();
        let mut c = Cdf::new();
        for &s in &samples {
            h.record(s);
            c.record(s);
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = c.quantile(q);
            let approx = h.value_at_quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.04, "q={q}: approx {approx} vs exact {exact}");
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.max(), *samples.iter().max().unwrap());
        assert_eq!(h.min(), *samples.iter().min().unwrap());
    });
}

/// Welford merging is order-independent and matches the direct sum.
#[test]
fn running_stats_merge_consistency() {
    forall("running stats merge", 64, |rng| {
        let draw = |rng: &mut RngStream| {
            let n = range(rng, 1, 100);
            (0..n)
                .map(|_| rng.uniform() * 2e6 - 1e6)
                .collect::<Vec<f64>>()
        };
        let a = draw(rng);
        let b = draw(rng);
        let sa: RunningStats = a.iter().copied().collect();
        let sb: RunningStats = b.iter().copied().collect();
        let mut merged = sa;
        merged.merge(&sb);
        let direct: RunningStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged.count(), direct.count());
        assert!((merged.mean() - direct.mean()).abs() < 1e-6);
        assert!((merged.population_variance() - direct.population_variance()).abs() < 1e-3);
    });
}

/// The DVFS state machine never loses a transition: after any request
/// sequence, driving completions settles at the last requested state.
#[test]
fn dvfs_always_settles_at_last_request() {
    // `complete` must fire exactly at the `completes_at` the machine
    // returned (the testbed schedules it as an event), so the driver
    // fires every completion due before the next request on time.
    fn fire_due(
        dvfs: &mut CoreDvfs,
        pending: &mut Option<(SimTime, u64)>,
        upto: Option<SimTime>,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) {
        let mut guard = 0;
        while let Some((at, token)) = *pending {
            if upto.is_some_and(|t| at > t) {
                break;
            }
            *pending = match dvfs.complete(token, at, profile, rng) {
                CompletionResult::FollowUp {
                    completes_at,
                    token,
                    ..
                } => Some((completes_at, token)),
                CompletionResult::Settled { .. } | CompletionResult::Stale => None,
            };
            guard += 1;
            assert!(guard < 100, "completion chain does not terminate");
        }
    }
    forall("dvfs settles", 128, |rng| {
        let profile = ProcessorProfile::xeon_gold_6134();
        let step = range(rng, 1, 41);
        let n_targets = range(rng, 1, 40);
        let targets: Vec<u8> = (0..n_targets).map(|_| rng.below(16) as u8).collect();
        let mut dvfs = CoreDvfs::new(profile.pstates.slowest());
        let mut now = SimTime::ZERO;
        let mut pending: Option<(SimTime, u64)> = None;
        let mut last = dvfs.current();
        for &t in &targets {
            fire_due(&mut dvfs, &mut pending, Some(now), &profile, rng);
            let target = PState::new(t);
            last = target;
            match dvfs.request(target, now, &profile, rng) {
                TransitionOutcome::Started {
                    completes_at,
                    token,
                } => {
                    pending = Some((completes_at, token));
                }
                TransitionOutcome::Queued | TransitionOutcome::AlreadyThere => {}
            }
            now += SimDuration::from_micros(step);
        }
        // Drain whatever is still in flight, each at its exact time.
        fire_due(&mut dvfs, &mut pending, None, &profile, rng);
        assert_eq!(dvfs.current(), last);
        assert!(!dvfs.is_transitioning());
    });
}

/// NAPI per-mode counters exactly cover every Rx packet fed in.
#[test]
fn napi_counters_conserve_packets() {
    forall("napi conservation", 128, |rng| {
        let n_batches = range(rng, 1, 60);
        let batches: Vec<(usize, bool)> = (0..n_batches)
            .map(|_| (rng.below(100) as usize, rng.next_u64() & 1 == 1))
            .collect();
        let mut napi = NapiContext::new(StackParams::linux_defaults());
        let mut t = SimTime::ZERO;
        let mut fed = 0u64;
        let mut active = false;
        let mut kso = false;
        for (rx, drain_hint) in batches {
            if !active {
                napi.on_irq(t);
                active = true;
                kso = false;
            }
            t += SimDuration::from_micros(10);
            let ctx = if kso {
                ProcContext::Ksoftirqd
            } else {
                ProcContext::SoftIrq
            };
            let out = napi.record_poll(rx, 0, drain_hint, false, ctx, t);
            fed += rx as u64;
            match out.verdict {
                PollVerdict::Complete => active = false,
                PollVerdict::Handoff => {
                    napi.ksoftirqd_takeover();
                    kso = true;
                }
                PollVerdict::Continue => {}
            }
        }
        assert_eq!(
            napi.total_interrupt_packets() + napi.total_polling_packets(),
            fed
        );
    });
}

/// Rings never lose accepted items and report drops exactly.
#[test]
fn ring_conservation() {
    forall("ring conservation", 128, |rng| {
        let capacity = range(rng, 1, 64) as usize;
        let pushes = range(rng, 1, 200) as usize;
        let mut ring = DescRing::new(capacity);
        let mut accepted = 0u64;
        for i in 0..pushes {
            if ring.push(i).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, ring.total_enqueued());
        assert_eq!(ring.dropped() + accepted, pushes as u64);
        let mut popped = 0u64;
        while ring.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, accepted.min(capacity as u64));
    });
}

/// RSS is total and stable for any queue count and flow.
#[test]
fn rss_total_and_stable() {
    forall("rss total", 256, |rng| {
        let queues = range(rng, 1, 64) as usize;
        let flow = rng.next_u64();
        let rss = RssHasher::new(queues);
        let q = rss.queue_for(FlowId(flow));
        assert!(q.0 < queues);
        assert_eq!(q, rss.queue_for(FlowId(flow)));
    });
}

/// Bursty arrivals strictly advance and stay inside burst windows.
#[test]
fn arrivals_advance_within_bursts() {
    forall("arrivals in bursts", 128, |rng| {
        let avg = 1_000.0 + rng.uniform() * 199_000.0;
        let duty = 0.05 + rng.uniform() * 0.95;
        let period = SimDuration::from_millis(100);
        let mut arr = BurstyArrivals::from_average(avg, period, duty, 0.3);
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            let next = arr.next_after(t, rng).unwrap();
            assert!(next > t, "arrivals must strictly advance");
            let pos = next.as_nanos() % period.as_nanos();
            assert!(
                pos < arr.burst_len().as_nanos().max(1),
                "arrival outside burst window"
            );
            t = next;
        }
    });
}

/// Core utilization samples are always within [0, 1] and busy never
/// exceeds CC0 residency.
#[test]
fn utilization_sample_bounds() {
    forall("utilization bounds", 128, |rng| {
        let profile = ProcessorProfile::xeon_gold_6134();
        let mut core = cpusim::Core::new(cpusim::CoreId(0), &profile);
        let mut t = SimTime::ZERO;
        let periods = range(rng, 1, 20);
        for _ in 0..periods {
            let busy_us = rng.below(500);
            let idle_us = rng.below(500);
            core.set_busy(true, t, &profile);
            t += SimDuration::from_micros(busy_us);
            core.set_busy(false, t, &profile);
            t += SimDuration::from_micros(idle_us);
        }
        let sample = core.take_sample(t + SimDuration::from_micros(1), &profile);
        assert!((0.0..=1.0).contains(&sample.busy_frac));
        assert!((0.0..=1.0).contains(&sample.c0_frac));
        assert!(sample.busy_frac <= sample.c0_frac + 1e-9);
    });
}

/// Whole-run determinism over arbitrary (seed, governor, load)
/// triples: the same config run twice yields identical results, and
/// `run_many`'s parallel execution matches serial `run` exactly.
#[test]
fn runs_are_deterministic_for_arbitrary_configs() {
    forall("run determinism", 3, |rng| {
        let governor = match rng.below(5) {
            0 => GovernorKind::Performance,
            1 => GovernorKind::Ondemand,
            2 => GovernorKind::Schedutil,
            3 => GovernorKind::NmapSimpl,
            _ => GovernorKind::Userspace(rng.below(16) as u8),
        };
        let rps = 10_000.0 + rng.uniform() * 90_000.0;
        let load = LoadSpec::custom(rps, SimDuration::from_millis(100), 0.4, 0.3);
        let seed = rng.next_u64();
        let cfg = RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(150),
            ..RunConfig::new(AppKind::Memcached, load, governor, Scale::Quick)
        }
        .with_seed(seed)
        .with_traces();
        let first = experiments::run(cfg.clone());
        let second = experiments::run(cfg.clone());
        assert_eq!(first, second, "same seed must reproduce bit-identically");
        // The structured metrics snapshot is part of RunResult, but
        // assert it explicitly (rendered form = byte identity) so a
        // nondeterministic metric fails with a readable diff.
        assert_eq!(
            first.metrics.render(),
            second.metrics.render(),
            "metrics snapshots must be byte-identical between same-seed runs"
        );
        let many = experiments::run_many(vec![cfg.clone(), cfg]);
        assert_eq!(many[0], first, "parallel run_many must match serial run");
        assert_eq!(many[1], first);
        assert_eq!(many[0].metrics.render(), first.metrics.render());
    });
}

/// Fault-enabled determinism over arbitrary composed schedules: a
/// randomly drawn fault plan (kinds, windows, probabilities, its own
/// seed) reproduces bit-identically on re-run, and `run_many` matches
/// serial `run` — the plan and its seed travel with the config into
/// worker threads.
#[cfg(feature = "fault")]
#[test]
fn fault_runs_are_deterministic_for_arbitrary_plans() {
    use simcore::{FaultKind, FaultPlan, FaultScope};
    forall("fault run determinism", 3, |rng| {
        let ms = |v: u64| SimTime::ZERO + SimDuration::from_millis(v);
        // Windows inside the 50 ms warm-up + 150 ms measured run.
        let window = |rng: &mut RngStream| {
            let start = range(rng, 30, 120);
            FaultScope::window(ms(start), ms(start + range(rng, 10, 60)))
        };
        let kinds = [
            FaultKind::WireDrop { prob: 0.1 },
            FaultKind::IrqLoss { prob: 0.2 },
            FaultKind::SpuriousIrq {
                period: SimDuration::from_micros(250),
            },
            FaultKind::MissedKsoftirqdWake {
                delay: SimDuration::from_micros(100),
                prob: 0.5,
            },
            FaultKind::NapiSignalLoss { prob: 0.5 },
            FaultKind::DvfsLatencySpike {
                extra: SimDuration::from_micros(200),
            },
            FaultKind::ThermalThrottle { floor: 5 },
            FaultKind::LoadSpike { factor: 1.4 },
            FaultKind::IncastBurst { requests: 50 },
            // Cluster-scope kinds are inert on a single box (only the
            // fleet tier queries them) but must still validate and
            // travel deterministically with the plan.
            FaultKind::ServerCrash,
            FaultKind::HealthViewStale,
            FaultKind::LinkLatencySpike {
                extra: SimDuration::from_micros(300),
            },
            FaultKind::LinkPartition,
            FaultKind::HashSkew { factor: 2.0 },
        ];
        let mut plan = FaultPlan::new().with_seed(rng.next_u64());
        for _ in 0..range(rng, 2, 5) {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            plan = plan.inject(kind, window(rng));
        }
        let governor = if rng.next_u64() & 1 == 0 {
            GovernorKind::Ondemand
        } else {
            GovernorKind::NmapSimpl
        };
        let load = LoadSpec::custom(30_000.0, SimDuration::from_millis(100), 0.4, 0.3);
        let cfg = RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(150),
            ..RunConfig::new(AppKind::Memcached, load, governor, Scale::Quick)
        }
        .with_seed(rng.next_u64())
        .with_fault_plan(plan);
        let first = experiments::run(cfg.clone());
        let second = experiments::run(cfg.clone());
        assert_eq!(
            first, second,
            "same seed + same plan must reproduce bit-identically"
        );
        assert_eq!(first.faults, second.faults, "fault draws must be seeded");
        let many = experiments::run_many(vec![cfg.clone(), cfg]);
        assert_eq!(many[0], first, "run_many must propagate the fault plan");
        assert_eq!(many[1], first);
    });
}

/// Fuzzed cluster-scope fault plans: arbitrary compositions of
/// server crashes, stale health views, link latency spikes, hard
/// partitions, hash skew, load spikes, and admission-gate bypasses —
/// over random fleet sizes, loads, seeds, and overload-control
/// settings — never panic, never wedge (budgeted), and never violate
/// the fleet's exact cross-server conservation roll-up (a violation
/// inside the run surfaces as a typed `Accounting` error, which this
/// test treats as failure). With overload control drawn in, the
/// request partition gains its shed term and the shed attempts stay
/// an audited sub-account of the failed ones.
#[cfg(feature = "fault")]
#[test]
fn fleet_fault_plans_never_violate_conservation() {
    use cluster::FleetConfig;
    use simcore::{FaultKind, FaultPlan, FaultScope};
    forall("fleet fault plans", 3, |rng| {
        let servers = 2 + rng.below(3) as usize;
        let ms = |v: u64| SimTime::ZERO + SimDuration::from_millis(v);
        // Windows inside the 20 ms warm-up + 100 ms measured run,
        // ending by 120 ms so ejected servers can be readmitted.
        let window = |rng: &mut RngStream| {
            let start = range(rng, 25, 80);
            FaultScope::window(ms(start), ms(start + range(rng, 10, 40)))
        };
        let kinds = [
            FaultKind::ServerCrash,
            FaultKind::HealthViewStale,
            FaultKind::LinkLatencySpike {
                extra: SimDuration::from_micros(range(rng, 50, 3_000)),
            },
            FaultKind::LinkPartition,
            FaultKind::HashSkew {
                factor: 1.0 + rng.uniform() * 4.0,
            },
            // Overload kinds: a demand surge and a window where the
            // admission gate is forced open (shedding suppressed).
            FaultKind::LoadSpike {
                factor: 1.2 + rng.uniform() * 1.5,
            },
            FaultKind::AdmissionDisable,
        ];
        let mut plan = FaultPlan::new().with_seed(rng.next_u64());
        for _ in 0..range(rng, 2, 6) {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            let mut scope = window(rng);
            if rng.next_u64() & 1 == 0 {
                scope = scope.on_core(rng.below(servers as u64) as usize);
            }
            plan = plan.inject(kind, scope);
        }
        let rps = 6_000.0 + rng.uniform() * 30_000.0;
        let mut cfg = FleetConfig::new(servers, AppKind::Memcached, rps, GovernorKind::Ondemand)
            .with_window(SimDuration::from_millis(20), SimDuration::from_millis(100))
            .with_seed(rng.next_u64())
            .with_fault_plan(plan);
        // Half the draws run with the full overload-control stack so
        // shedding, budgets, breakers, and brownout are fuzzed under
        // the same composed chaos schedules.
        if rng.next_u64() & 1 == 0 {
            cfg = cfg.with_overload_control();
        }
        cfg.validate().expect("drawn fleet configs are valid");
        let budget = simcore::StepBudget::unlimited().with_max_events(20_000_000);
        match cluster::try_run_fleet_budgeted(cfg, &budget) {
            Ok(r) => {
                assert_eq!(
                    r.admitted,
                    r.completed + r.shed + r.timed_out + r.in_flight_at_end,
                    "request partition leaks under a fuzzed cluster plan"
                );
                assert_eq!(
                    r.dispatched,
                    r.attempts_completed
                        + r.attempts_failed
                        + r.suppressed
                        + r.attempts_in_flight_at_end,
                    "attempt partition leaks under a fuzzed cluster plan"
                );
                assert!(
                    r.attempts_shed <= r.attempts_failed,
                    "shed attempts must stay a sub-account of failed ones"
                );
                assert!(r.audit.is_balanced(), "roll-up unbalanced");
            }
            Err(e) => assert!(e.is_budget(), "only budget errors allowed: {e}"),
        }
    });
}

/// Fuzzed, deliberately degenerate configurations never panic:
/// every draw either fails `RunConfig::validate()` with a typed
/// config error (whose rendering is non-empty) or is genuinely
/// valid — and a sample of the valid ones runs to completion.
///
/// 10 000 cases cover zero/NaN/infinite rates, zero and overflowing
/// windows, inverted governor thresholds, zero-queue and
/// more-queues-than-cores RSS layouts, and hostile NMAP tunables.
#[test]
fn degenerate_configs_never_panic() {
    use nmap::NmapConfig;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // A hostile f64: mostly garbage, occasionally plausible. The
    // unit-interval branch is what lets a draw survive validation
    // (duty and ramp_frac both need a fraction), so some cases reach
    // the run-to-completion arm below.
    fn weird_f64(rng: &mut RngStream) -> f64 {
        match rng.below(9) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -1.0,
            5 => 1e-300,
            6 => 1e300,
            7 => rng.uniform(),
            _ => rng.uniform() * 100_000.0,
        }
    }
    fn weird_dur(rng: &mut RngStream) -> SimDuration {
        match rng.below(6) {
            0 => SimDuration::ZERO,
            1 => SimDuration::MAX,
            2 => SimDuration::from_nanos(1),
            _ => SimDuration::from_micros(range(rng, 1, 1_000_000)),
        }
    }

    let mut ran = 0u32;
    forall("degenerate configs", 10_000, |rng| {
        let load = LoadSpec::custom(
            weird_f64(rng),
            weird_dur(rng),
            weird_f64(rng),
            weird_f64(rng),
        );
        let governor = match rng.below(6) {
            0 => GovernorKind::Performance,
            1 => GovernorKind::Ncap(weird_f64(rng)),
            2 => GovernorKind::NcapMenu(weird_f64(rng)),
            3 => {
                // Mutate a valid base: `NmapConfig::new` asserts on a
                // bad CU_TH, but struct mutation must stay panic-free
                // all the way to `validate()`.
                let mut c = NmapConfig::new(64, 1.5);
                c.ni_threshold = rng.next_u64() % 1_000;
                c.cu_threshold = weird_f64(rng);
                c.timer_interval = weird_dur(rng);
                GovernorKind::Nmap(c)
            }
            4 => GovernorKind::Ondemand,
            _ => GovernorKind::NmapSimpl,
        };
        let mut cfg = RunConfig::new(AppKind::Memcached, load, governor, Scale::Quick);
        cfg.warmup = weird_dur(rng);
        cfg.duration = weird_dur(rng);
        if rng.below(3) == 0 {
            // 0 and 9..16 queues are invalid on the 8-core testbed.
            cfg.nic_queues = Some(rng.below(17) as usize);
        }
        cfg = cfg.with_seed(rng.next_u64());

        let verdict = catch_unwind(AssertUnwindSafe(|| cfg.validate()));
        match verdict {
            Err(_) => panic!("validate() itself must never panic: {cfg:?}"),
            Ok(Err(e)) => {
                assert!(e.is_config(), "validation failures are config errors: {e}");
                assert!(!e.to_string().is_empty(), "errors must render a reason");
            }
            Ok(Ok(())) => {
                // A sample of the valid survivors must actually run —
                // with the windows shrunk so the whole fuzz pass stays
                // fast — and produce a well-formed result.
                if ran < 4 && !cfg.warmup.is_zero() && cfg.duration < SimDuration::from_secs(1) {
                    ran += 1;
                    cfg.warmup = SimDuration::from_millis(2);
                    cfg.duration = SimDuration::from_millis(10);
                    // Budgeted, so even a load validation missed stays
                    // a typed error rather than a hung test.
                    let budget = simcore::StepBudget::unlimited().with_max_events(5_000_000);
                    match experiments::try_run_budgeted(cfg.clone(), &budget) {
                        Ok(r) => {
                            assert!(r.received <= r.sent, "can't receive more than sent");
                        }
                        Err(e) => assert!(
                            e.is_budget(),
                            "a validated config may only fail on budget: {e}"
                        ),
                    }
                }
            }
        }
    });
}
