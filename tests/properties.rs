//! Property-based tests (proptest) on the core data structures and
//! state machines: statistics consistency, DVFS protocol safety, NAPI
//! counter conservation, ring/RSS behaviour, arrival monotonicity.

use cpusim::dvfs::{CompletionResult, CoreDvfs, TransitionOutcome};
use cpusim::{ProcessorProfile, PState};
use napisim::{NapiContext, PollVerdict, ProcContext, StackParams};
use netsim::{DescRing, FlowId, RssHasher};
use proptest::prelude::*;
use simcore::{Cdf, Histogram, RngStream, RunningStats, SimDuration, SimTime};
use workload::{ArrivalProcess, BurstyArrivals};

proptest! {
    /// The log-bucketed histogram's quantiles stay within its relative
    /// error bound of the exact CDF's.
    #[test]
    fn histogram_tracks_exact_cdf(samples in prop::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        let mut c = Cdf::new();
        for &s in &samples {
            h.record(s);
            c.record(s);
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = c.quantile(q);
            let approx = h.value_at_quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(err < 0.04, "q={q}: approx {approx} vs exact {exact}");
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
    }

    /// Welford merging is order-independent and matches the direct sum.
    #[test]
    fn running_stats_merge_consistency(
        a in prop::collection::vec(-1e6f64..1e6, 1..100),
        b in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let sa: RunningStats = a.iter().copied().collect();
        let sb: RunningStats = b.iter().copied().collect();
        let mut merged = sa;
        merged.merge(&sb);
        let direct: RunningStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-6);
        prop_assert!((merged.population_variance() - direct.population_variance()).abs() < 1e-3);
    }

    /// The DVFS state machine never loses a transition: after any
    /// request sequence, driving completions settles at the last
    /// requested state.
    #[test]
    fn dvfs_always_settles_at_last_request(
        targets in prop::collection::vec(0u8..16, 1..40),
        seed in 0u64..1000,
    ) {
        let profile = ProcessorProfile::xeon_gold_6134();
        let mut rng = RngStream::from_seed(seed);
        let mut dvfs = CoreDvfs::new(profile.pstates.slowest());
        let mut now = SimTime::ZERO;
        let mut pending: Option<(SimTime, u64)> = None;
        let mut last = dvfs.current();
        for &t in &targets {
            let target = PState::new(t);
            last = target;
            match dvfs.request(target, now, &profile, &mut rng) {
                TransitionOutcome::Started { completes_at, token } => {
                    pending = Some((completes_at, token));
                }
                TransitionOutcome::Queued | TransitionOutcome::AlreadyThere => {}
            }
            now += SimDuration::from_micros(seed % 40 + 1);
        }
        // Drain completions.
        let mut guard = 0;
        while let Some((at, token)) = pending.take() {
            let at = at.max(now);
            match dvfs.complete(token, at, &profile, &mut rng) {
                CompletionResult::FollowUp { completes_at, token, .. } => {
                    pending = Some((completes_at, token));
                }
                CompletionResult::Settled { .. } | CompletionResult::Stale => {}
            }
            now = at;
            guard += 1;
            prop_assert!(guard < 100, "completion chain does not terminate");
        }
        prop_assert_eq!(dvfs.current(), last);
        prop_assert!(!dvfs.is_transitioning());
    }

    /// NAPI per-mode counters exactly cover every Rx packet fed in.
    #[test]
    fn napi_counters_conserve_packets(
        batches in prop::collection::vec((0usize..100, any::<bool>()), 1..60),
    ) {
        let mut napi = NapiContext::new(StackParams::linux_defaults());
        let mut t = SimTime::ZERO;
        let mut fed = 0u64;
        let mut active = false;
        let mut kso = false;
        for (rx, drain_hint) in batches {
            if !active {
                napi.on_irq(t);
                active = true;
                kso = false;
            }
            t += SimDuration::from_micros(10);
            let ctx = if kso { ProcContext::Ksoftirqd } else { ProcContext::SoftIrq };
            let out = napi.record_poll(rx, 0, drain_hint, false, ctx, t);
            fed += rx as u64;
            match out.verdict {
                PollVerdict::Complete => active = false,
                PollVerdict::Handoff => {
                    napi.ksoftirqd_takeover();
                    kso = true;
                }
                PollVerdict::Continue => {}
            }
        }
        prop_assert_eq!(napi.total_interrupt_packets() + napi.total_polling_packets(), fed);
    }

    /// Rings never lose accepted items and report drops exactly.
    #[test]
    fn ring_conservation(capacity in 1usize..64, pushes in 1usize..200) {
        let mut ring = DescRing::new(capacity);
        let mut accepted = 0u64;
        for i in 0..pushes {
            if ring.push(i).is_ok() {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted, ring.total_enqueued());
        prop_assert_eq!(ring.dropped() + accepted, pushes as u64);
        let mut popped = 0u64;
        while ring.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, accepted.min(capacity as u64));
    }

    /// RSS is total and stable for any queue count and flow.
    #[test]
    fn rss_total_and_stable(queues in 1usize..64, flow in any::<u64>()) {
        let rss = RssHasher::new(queues);
        let q = rss.queue_for(FlowId(flow));
        prop_assert!(q.0 < queues);
        prop_assert_eq!(q, rss.queue_for(FlowId(flow)));
    }

    /// Bursty arrivals strictly advance and stay inside burst windows.
    #[test]
    fn arrivals_advance_within_bursts(
        avg in 1_000.0f64..200_000.0,
        duty in 0.05f64..1.0,
        seed in 0u64..500,
    ) {
        let period = SimDuration::from_millis(100);
        let mut arr = BurstyArrivals::from_average(avg, period, duty, 0.3);
        let mut rng = RngStream::from_seed(seed);
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            let next = arr.next_after(t, &mut rng).unwrap();
            prop_assert!(next > t, "arrivals must strictly advance");
            let pos = next.as_nanos() % period.as_nanos();
            prop_assert!(
                pos < arr.burst_len().as_nanos().max(1),
                "arrival outside burst window"
            );
            t = next;
        }
    }

    /// Core utilization samples are always within [0, 1] and busy
    /// never exceeds CC0 residency.
    #[test]
    fn utilization_sample_bounds(
        busy_periods in prop::collection::vec((0u64..500, 0u64..500), 1..20),
    ) {
        let profile = ProcessorProfile::xeon_gold_6134();
        let mut core = cpusim::Core::new(cpusim::CoreId(0), &profile);
        let mut t = SimTime::ZERO;
        for (busy_us, idle_us) in busy_periods {
            core.set_busy(true, t, &profile);
            t += SimDuration::from_micros(busy_us);
            core.set_busy(false, t, &profile);
            t += SimDuration::from_micros(idle_us);
        }
        let sample = core.take_sample(t + SimDuration::from_micros(1), &profile);
        prop_assert!((0.0..=1.0).contains(&sample.busy_frac));
        prop_assert!((0.0..=1.0).contains(&sample.c0_frac));
        prop_assert!(sample.busy_frac <= sample.c0_frac + 1e-9);
    }
}
