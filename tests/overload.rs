//! Overload-control integration: admission shedding, retry budgets,
//! circuit breakers, and brownout — the robustness contract on top of
//! the fleet tier.
//!
//! * shed accounting — an attempt rejected by a server's admission
//!   gate closes as *failed* (with `attempts_shed` as its audited
//!   sub-account), never as a suppressed duplicate, even when the
//!   rejection lands after its request already closed;
//! * determinism — every governor's fleet runs bit-identically with
//!   the full overload-control stack engaged, serial == parallel;
//! * the metastable dichotomy — with control ON the fleet re-enters
//!   its SLO within the recovery bound of the trigger clearing; the
//!   identical fleet with control OFF sustains the violation on retry
//!   feedback alone. The dichotomy runs four fleet cells near the
//!   saturation knee and takes minutes in a debug build, so it is
//!   `#[ignore]`d here and driven in release by CI (both directly —
//!   `cargo test --release --test overload -- --ignored` — and as the
//!   `repro overload` golden smoke against
//!   `tests/golden/quick_overload.txt`). Regenerate the fixture with
//!   `UPDATE_GOLDEN=1 cargo test --release --test overload -- --ignored`.

#![cfg(feature = "fault")]

use appsim::AdmissionPolicy;
use cluster::{run_fleet, run_fleet_many, FleetConfig, GovernorKind, RetryPolicy};
use experiments::figures::chaos::all_governors;
use simcore::fault::{FaultKind, FaultPlan, FaultScope};
use simcore::{SimDuration, SimTime};
use workload::AppKind;

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

/// Re-derive both conservation identities (with the shed terms) from
/// the public summary fields.
fn assert_conserved(r: &cluster::FleetResult, label: &str) {
    assert_eq!(
        r.admitted,
        r.completed + r.shed + r.timed_out + r.in_flight_at_end,
        "{label}: request partition leaks"
    );
    assert_eq!(
        r.dispatched,
        r.attempts_completed + r.attempts_failed + r.suppressed + r.attempts_in_flight_at_end,
        "{label}: attempt partition leaks"
    );
    assert!(
        r.attempts_shed <= r.attempts_failed,
        "{label}: shed attempts must stay a sub-account of failed ones"
    );
    assert!(r.audit.is_balanced(), "{label}: roll-up unbalanced");
}

/// A fleet whose admission gates bite: a near-zero-depth static gate
/// on every server, a crash window forcing timeout retries, and no
/// hedging — so every duplicate-response path is off and anything
/// landing in `suppressed` could only be a misclassified shed.
fn forced_shed_cfg() -> FleetConfig {
    FleetConfig::new(2, AppKind::Memcached, 60_000.0, GovernorKind::Ondemand)
        .with_window(SimDuration::from_millis(20), SimDuration::from_millis(80))
        .with_seed(31)
        .with_admission(AdmissionPolicy::StaticDepth { limit: 1 })
        .with_hedge(None)
        .with_retry(RetryPolicy {
            timeout: SimDuration::from_micros(400),
            max_attempts: 3,
            backoff_base: SimDuration::from_micros(50),
            backoff_cap: SimDuration::from_micros(200),
        })
        .with_fault_plan(FaultPlan::new().with_seed(3).inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(40), ms(70)).on_core(1),
        ))
}

/// Regression: a retry that was admitted and then shed by the
/// server's admission gate must close its attempt as *failed* — it
/// must never land in `suppressed`, which is reserved for duplicate
/// responses that lost a hedge/retry race. With hedging off and a
/// shed-heavy schedule, `suppressed` stays exactly zero while the
/// shed sub-account runs hot.
#[test]
fn shed_retry_lands_in_failed_not_suppressed() {
    let r = run_fleet(forced_shed_cfg());
    assert!(r.retries > 0, "the crash window must force retries");
    assert!(
        r.attempts_shed > 0,
        "a depth-1 admission gate under 60k rps must shed"
    );
    assert_eq!(
        r.suppressed, 0,
        "with hedging off nothing races: a non-zero suppressed count \
         means a shed attempt was misclassified as a duplicate"
    );
    assert_conserved(&r, "forced-shed");
}

/// The full overload-control stack (sojourn admission, retry
/// budgets, breakers, brownout) stays deterministic for every
/// governor the harness knows: serial == serial rerun ==
/// `run_fleet_many`, and conservation holds with the shed terms.
#[test]
fn all_governors_overload_fleet_serial_matches_parallel() {
    let governors = all_governors(AppKind::Memcached);
    assert_eq!(governors.len(), 13, "governor roster drifted");
    let small = |gov: GovernorKind| {
        FleetConfig::new(2, AppKind::Memcached, 10_000.0, gov)
            .with_window(SimDuration::from_millis(30), SimDuration::from_millis(90))
            .with_seed(11)
            .with_overload_control()
            .with_fault_plan(FaultPlan::new().with_seed(7).inject(
                FaultKind::ServerCrash,
                FaultScope::window(ms(50), ms(80)).on_core(1),
            ))
    };
    let configs: Vec<FleetConfig> = governors.iter().map(|&(_, gov)| small(gov)).collect();
    let parallel = run_fleet_many(configs.clone());
    for ((label, _), (cfg, par)) in governors.iter().zip(configs.into_iter().zip(&parallel)) {
        let serial = run_fleet(cfg);
        assert_eq!(
            serial, *par,
            "{label}: worker pool must match serial with breakers engaged"
        );
        assert_conserved(&serial, label);
        assert!(serial.completed > 0, "{label}: fleet served nothing");
    }
}

/// The metastable-failure dichotomy, pinned as a typed assertion AND
/// as a byte-exact golden fixture of the rendered `repro overload`
/// artifact. Four fleet cells near the saturation knee — minutes in
/// debug, ~70 s in release — hence `#[ignore]`; CI runs it in its
/// release lane.
#[test]
#[ignore = "4 near-knee fleet cells; run in release via CI (cargo test --release --test overload -- --ignored)"]
fn metastable_dichotomy_holds_and_matches_golden() {
    use experiments::figures::overload::{dichotomy, render};
    use experiments::Scale;
    let outcome = dichotomy(Scale::Quick);
    outcome
        .check()
        .expect("overload control must recover inside the bound and its absence must not");
    let rendered = render(&outcome).to_string();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_overload.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --release --test overload -- --ignored",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "overload artifact drifted against {}",
        path.display()
    );
}
