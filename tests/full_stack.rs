//! Cross-crate integration tests: the full testbed driven end-to-end
//! under every governor and sleep policy, checking the invariants the
//! paper's evaluation rests on.

use appsim::{AppModel, Testbed, TestbedConfig};
use cpusim::{CState, PState, ProcessorProfile};
use governors::*;
use nmap::{NmapConfig, NmapGovernor, NmapSimpl};
use simcore::{SimDuration, SimTime, Simulator};
use workload::{AppKind, LoadLevel, LoadSpec};

fn small_load() -> LoadSpec {
    LoadSpec::custom(40_000.0, SimDuration::from_millis(100), 0.4, 0.3)
}

fn build(
    governor: Box<dyn PStateGovernor>,
    sleep: Box<dyn SleepPolicy>,
) -> (Simulator<Testbed>, Testbed) {
    let cfg = TestbedConfig::new(AppModel::memcached(), small_load()).with_seed(99);
    let mut sim = Simulator::new();
    let tb = Testbed::new(cfg, governor, sleep, &mut sim);
    (sim, tb)
}

fn every_governor() -> Vec<Box<dyn PStateGovernor>> {
    let table = ProcessorProfile::xeon_gold_6134().pstates;
    vec![
        Box::new(Performance::new()),
        Box::new(Powersave::new(table.slowest())),
        Box::new(Userspace::new(PState::new(7))),
        Box::new(Ondemand::new(table.clone(), 8)),
        Box::new(Conservative::new(table.clone(), 8)),
        Box::new(IntelPowersave::new(table.clone(), 8)),
        Box::new(NmapSimpl::new(table.clone(), 8)),
        Box::new(NmapGovernor::new(
            table.clone(),
            8,
            NmapConfig::new(32, 1.0),
        )),
        Box::new(Ncap::new(
            table.clone(),
            8,
            NcapConfig::with_threshold(50_000.0),
        )),
        Box::new(Parties::new(
            table,
            PartiesConfig::new(SimDuration::from_millis(1)),
        )),
    ]
}

#[test]
fn every_governor_serves_traffic_end_to_end() {
    for governor in every_governor() {
        let name = governor.name();
        let (mut sim, mut tb) = build(governor, Box::new(MenuPolicy::new(8)));
        sim.run_until(&mut tb, SimTime::from_millis(400));
        assert!(
            tb.client.received() as f64 >= 0.9 * tb.client.sent() as f64,
            "{name}: only {}/{} responses",
            tb.client.received(),
            tb.client.sent()
        );
        assert!(
            tb.client.received() <= tb.client.sent(),
            "{name}: more responses than requests"
        );
    }
}

#[test]
fn every_sleep_policy_works_with_ondemand() {
    let table = ProcessorProfile::xeon_gold_6134().pstates;
    let policies: Vec<Box<dyn SleepPolicy>> = vec![
        Box::new(MenuPolicy::new(8)),
        Box::new(DisablePolicy::new()),
        Box::new(C6OnlyPolicy::new()),
    ];
    for sleep in policies {
        let name = sleep.name();
        let (mut sim, mut tb) = build(Box::new(Ondemand::new(table.clone(), 8)), sleep);
        sim.run_until(&mut tb, SimTime::from_millis(400));
        assert!(tb.client.received() > 0, "{name}: no traffic served");
        let c6: u64 = tb.processor.cores().iter().map(|c| c.c6_entries()).sum();
        match name.as_str() {
            "disable" => assert_eq!(c6, 0, "disable must never enter CC6"),
            "c6only" => assert!(c6 > 0, "c6only must enter CC6"),
            _ => {}
        }
    }
}

#[test]
fn energy_ordering_performance_vs_powersave() {
    let table = ProcessorProfile::xeon_gold_6134().pstates;
    let run = |gov: Box<dyn PStateGovernor>| -> (f64, SimDuration) {
        let (mut sim, mut tb) = build(gov, Box::new(MenuPolicy::new(8)));
        sim.run_until(&mut tb, SimTime::from_millis(100));
        tb.begin_measurement(sim.now());
        sim.run_until(&mut tb, SimTime::from_millis(600));
        let e = tb.measured_energy(sim.now());
        let p99 = tb.client.latencies_mut().p99();
        (e, p99)
    };
    let (e_perf, l_perf) = run(Box::new(Performance::new()));
    let (e_save, l_save) = run(Box::new(Powersave::new(table.slowest())));
    assert!(e_save < e_perf, "powersave must use less energy");
    assert!(l_save >= l_perf, "powersave cannot be faster");
}

#[test]
fn conservation_ledger_balances_for_every_governor_and_sleep_policy() {
    // The tentpole audit: for every governor × sleep policy, run the
    // full stack and require every conservation identity — packets,
    // energy (within 1e-6 relative), latency samples — to balance,
    // both mid-flight and with the ledgers still carrying in-flight
    // work. With the `audit` feature off, audit_report returns None
    // and the loop degenerates to an end-to-end smoke pass.
    let sleeps: [fn() -> Box<dyn SleepPolicy>; 3] = [
        || Box::new(MenuPolicy::new(8)),
        || Box::new(DisablePolicy::new()),
        || Box::new(C6OnlyPolicy::new()),
    ];
    for make_sleep in sleeps {
        for governor in every_governor() {
            let gname = governor.name();
            let (mut sim, mut tb) = build(governor, make_sleep());
            let sname = tb.sleep.name();
            sim.run_until(&mut tb, SimTime::from_millis(150));
            tb.begin_measurement(sim.now());
            sim.run_until(&mut tb, SimTime::from_millis(400));
            if let Some(report) = tb.audit_report(sim.now()) {
                let violations = report.violations();
                assert!(violations.is_empty(), "{gname}/{sname}: {violations:?}");
            } else {
                assert!(tb.client.received() > 0, "{gname}/{sname}: no traffic");
            }
        }
    }
}

#[test]
fn conservation_no_phantom_packets() {
    let (mut sim, mut tb) = build(Box::new(Performance::new()), Box::new(MenuPolicy::new(8)));
    sim.run_until(&mut tb, SimTime::from_millis(500));
    let received = tb.client.received();
    let sent = tb.client.sent();
    let dropped = tb.nic.total_rx_dropped();
    let backlog = tb.total_backlog() as u64;
    // Every request is either answered, dropped, queued, or in flight.
    assert!(received + dropped + backlog <= sent);
    // NAPI counters cover at least one Rx packet per delivered request.
    let napi_total: u64 = tb
        .napi
        .iter()
        .map(|n| n.total_interrupt_packets() + n.total_polling_packets())
        .sum();
    assert!(
        napi_total >= received,
        "NAPI saw {napi_total} < {received} responses"
    );
}

#[test]
fn deterministic_with_seed_distinct_across_seeds() {
    let run = |seed: u64| -> (u64, u64) {
        let cfg = TestbedConfig::new(AppModel::memcached(), small_load()).with_seed(seed);
        let mut sim = Simulator::new();
        let mut tb = Testbed::new(
            cfg,
            Box::new(Performance::new()),
            Box::new(MenuPolicy::new(8)),
            &mut sim,
        );
        sim.run_until(&mut tb, SimTime::from_millis(300));
        (tb.client.sent(), tb.client.latencies_mut().quantile(0.99))
    };
    assert_eq!(run(1), run(1), "same seed must replay identically");
    assert_ne!(run(1), run(2), "different seeds must differ");
}

#[test]
fn run_many_matches_serial_for_every_governor_at_quick_scale() {
    // Determinism across execution strategies: for every governor
    // kind, one serial `run` and the same config dispatched through
    // the thread-pool `run_many` must produce byte-identical results.
    use experiments::{GovernorKind, RunConfig, Scale};
    let governors = vec![
        GovernorKind::Performance,
        GovernorKind::Powersave,
        GovernorKind::Userspace(7),
        GovernorKind::Ondemand,
        GovernorKind::Conservative,
        GovernorKind::Schedutil,
        GovernorKind::IntelPowersave,
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(NmapConfig::new(32, 1.0)),
        GovernorKind::NmapOnline,
        GovernorKind::Ncap(50_000.0),
        GovernorKind::NcapMenu(50_000.0),
        GovernorKind::Parties,
    ];
    let configs: Vec<RunConfig> = governors
        .iter()
        .map(|&g| RunConfig::new(AppKind::Memcached, small_load(), g, Scale::Quick).with_seed(2024))
        .collect();
    let serial: Vec<_> = configs.iter().cloned().map(experiments::run).collect();
    let parallel = experiments::run_many(configs);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "{}: parallel run diverged from serial", s.governor);
    }
}

#[test]
fn nmap_full_pipeline_boosts_and_relaxes() {
    let table = ProcessorProfile::xeon_gold_6134().pstates;
    let gov = NmapGovernor::new(table, 8, NmapConfig::new(16, 0.5));
    let load = LoadSpec::preset(AppKind::Memcached, LoadLevel::High);
    let cfg = TestbedConfig::new(AppModel::memcached(), load).with_seed(5);
    let mut sim = Simulator::new();
    let mut tb = Testbed::new(cfg, Box::new(gov), Box::new(MenuPolicy::new(8)), &mut sim);
    sim.run_until(&mut tb, SimTime::from_millis(500));
    // During bursts cores must have hit P0; between bursts they must
    // have come back down — so the P-state log shows both directions.
    let log = tb.processor.core(cpusim::CoreId(0)).pstate_log();
    let states: Vec<PState> = log.iter().map(|&(_, p)| p).collect();
    assert!(states.contains(&PState::P0), "never boosted");
    assert!(
        states.iter().any(|p| p.index() >= 8),
        "never relaxed back below the midpoint"
    );
    // And the cores slept between bursts.
    assert!(tb
        .processor
        .core(cpusim::CoreId(0))
        .cstate_log()
        .iter()
        .any(|&(_, s)| s == CState::C6));
}

#[test]
fn nginx_app_profile_flows_end_to_end() {
    let cfg = TestbedConfig::new(
        AppModel::nginx(),
        LoadSpec::custom(8_000.0, SimDuration::from_millis(100), 0.5, 0.3),
    )
    .with_seed(3);
    let mut sim = Simulator::new();
    let mut tb = Testbed::new(
        cfg,
        Box::new(Performance::new()),
        Box::new(MenuPolicy::new(8)),
        &mut sim,
    );
    sim.run_until(&mut tb, SimTime::from_millis(400));
    assert!(tb.client.received() > 1_000);
    // nginx generates far more NAPI descriptors than requests
    // (multi-segment responses + ACK clock).
    let napi_total: u64 = tb
        .napi
        .iter()
        .map(|n| n.total_interrupt_packets() + n.total_polling_packets())
        .sum();
    assert!(
        napi_total > 5 * tb.client.received(),
        "nginx rx packet multiplier missing: {napi_total} vs {}",
        tb.client.received()
    );
}

#[test]
fn chip_wide_scope_works_end_to_end() {
    let cfg = TestbedConfig::new(AppModel::memcached(), small_load())
        .with_seed(17)
        .with_scope(cpusim::DvfsScope::ChipWide);
    let mut sim = Simulator::new();
    let table = ProcessorProfile::xeon_gold_6134().pstates;
    let mut tb = Testbed::new(
        cfg,
        Box::new(Ondemand::new(table, 8)),
        Box::new(MenuPolicy::new(8)),
        &mut sim,
    );
    sim.run_until(&mut tb, SimTime::from_millis(400));
    assert!(tb.client.received() > 0);
    // All cores share one domain: their P-states agree at any time.
    let p0 = tb.processor.core(cpusim::CoreId(0)).pstate();
    for c in tb.processor.cores() {
        assert_eq!(c.pstate(), p0, "chip-wide cores diverged");
    }
}
