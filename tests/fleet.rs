//! Fleet-tier integration: the cluster simulation's robustness
//! contract end to end.
//!
//! * determinism — every governor's fleet reproduces bit-identically
//!   on re-run, and `run_fleet_many`'s worker pool matches serial
//!   `run_fleet` exactly;
//! * zero silent loss — under a server-crash schedule every admitted
//!   request is completed, shed, timed out, or accounted in flight, and
//!   every attempt is completed, crash-failed, suppressed, or
//!   outstanding (the conservation roll-up inside the run already
//!   asserts this; the test re-derives it from the summary fields);
//! * failover-bounded recovery — crashes eject the server from the
//!   LB view, surviving servers absorb the failed-over flows, and
//!   the crashed server is readmitted and serving again by the end.

use cluster::{run_fleet, run_fleet_many, FleetConfig, GovernorKind};
use experiments::figures::chaos::all_governors;
use simcore::SimDuration;
use workload::AppKind;

fn small(governor: GovernorKind) -> FleetConfig {
    FleetConfig::new(2, AppKind::Memcached, 10_000.0, governor)
        .with_window(SimDuration::from_millis(30), SimDuration::from_millis(90))
        .with_seed(11)
}

/// Re-derive both conservation identities from the public summary
/// fields (the run itself enforces them via `AuditReport`, but a
/// regression that miscounts *both* sides consistently would slip
/// past that — the summary cross-check pins the partition).
fn assert_conserved(r: &cluster::FleetResult, label: &str) {
    assert_eq!(
        r.admitted,
        r.completed + r.shed + r.timed_out + r.in_flight_at_end,
        "{label}: request partition leaks"
    );
    assert_eq!(
        r.dispatched,
        r.attempts_completed + r.attempts_failed + r.suppressed + r.attempts_in_flight_at_end,
        "{label}: attempt partition leaks"
    );
    assert!(r.audit.is_balanced(), "{label}: roll-up unbalanced");
}

/// Every governor the single-box harness knows also runs as a fleet,
/// deterministically: serial == serial rerun == `run_fleet_many`.
#[test]
fn all_governors_fleet_serial_matches_parallel() {
    let governors = all_governors(AppKind::Memcached);
    assert_eq!(governors.len(), 13, "governor roster drifted");
    let configs: Vec<FleetConfig> = governors.iter().map(|&(_, gov)| small(gov)).collect();
    let parallel = run_fleet_many(configs.clone());
    for ((label, _), (cfg, par)) in governors.iter().zip(configs.into_iter().zip(&parallel)) {
        let serial = run_fleet(cfg.clone());
        let again = run_fleet(cfg);
        assert_eq!(
            serial, again,
            "{label}: same seed must reproduce bit-identically"
        );
        assert_eq!(serial, *par, "{label}: worker pool must match serial");
        assert_conserved(&serial, label);
        assert!(serial.completed > 0, "{label}: fleet served nothing");
    }
}

#[cfg(feature = "fault")]
mod crashes {
    use super::*;
    use cluster::HedgePolicy;
    use simcore::fault::{FaultKind, FaultPlan, FaultScope};
    use simcore::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// Server 1 of 4 is down for [60, 160) ms of a 50 + 250 ms run:
    /// long enough for the health checker (5 ms probes, 3-strike
    /// ejection) to eject it, and with 140 ms of calm tail for the
    /// 2-strike readmission and a return to service.
    fn crash_cfg() -> FleetConfig {
        let plan = FaultPlan::new().with_seed(3).inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(60), ms(160)).on_core(1),
        );
        FleetConfig::new(4, AppKind::Memcached, 40_000.0, GovernorKind::Ondemand)
            .with_window(SimDuration::from_millis(50), SimDuration::from_millis(250))
            .with_seed(23)
            .with_hedge(Some(HedgePolicy {
                quantile: 0.95,
                floor: SimDuration::from_micros(200),
            }))
            .with_fault_plan(plan)
    }

    /// The crash drops real in-flight attempts, yet nothing goes
    /// missing: both partitions stay exact and the ledger balances.
    #[test]
    fn zero_silent_loss_under_server_crash() {
        let r = run_fleet(crash_cfg());
        assert_conserved(&r, "crash");
        assert_eq!(r.faults.server_crashes, 1, "crash boundary must fire");
        assert_eq!(r.faults.server_recoveries, 1, "recovery boundary must fire");
        assert!(
            r.attempts_failed > 0,
            "a 100 ms crash at 10 kRPS/server must catch attempts in flight"
        );
        assert!(
            r.servers[1].crashes == 1,
            "the crash must land on the scheduled server"
        );
        // Silent loss would show up as admitted requests missing from
        // every terminal bucket; the identity above rules it out, and
        // the fleet must still have closed nearly everything.
        assert!(r.completed > 0);
        assert!(
            r.availability > 0.98,
            "retry + failover must keep availability high, got {}",
            r.availability
        );
    }

    /// Failover is bounded and recovery is complete: the LB ejects
    /// the dead server, survivors absorb its flows, and by the end
    /// the server is readmitted and winning requests again.
    #[test]
    fn failover_bounded_recovery() {
        let r = run_fleet(crash_cfg());
        assert!(
            r.ejections >= 1,
            "health checker must eject the dead server"
        );
        assert!(
            r.readmissions >= 1,
            "health checker must readmit after recovery"
        );
        assert!(
            !r.servers.iter().any(|s| s.ejected_at_end),
            "no server may still be ejected 140 ms after recovery"
        );
        assert!(
            r.failovers > 0,
            "flows steered at the dead server must fail over"
        );
        // Bounded: retries are capped at max_attempts per request, so
        // the retry total can't exceed (max_attempts - 1) x admitted.
        let cap = u64::from(crash_cfg().retry.max_attempts - 1) * r.admitted;
        assert!(r.retries <= cap, "retry storm: {} > {cap}", r.retries);
        // Every server — including the crashed one — ends the run
        // having won requests: readmission restored real service.
        for (i, s) in r.servers.iter().enumerate() {
            assert!(s.won > 0, "server {i} never served after recovery");
        }
        // And the crash is visible in the metrics the ops story
        // depends on: timeouts stayed rare relative to admissions.
        assert!(r.timed_out * 50 <= r.admitted, "timeout rate exploded");
    }

    /// The crash schedule itself is deterministic through the worker
    /// pool — the plan travels with the config into worker threads.
    #[test]
    fn crash_fleet_deterministic_serial_and_parallel() {
        let serial = run_fleet(crash_cfg());
        let many = run_fleet_many(vec![crash_cfg(), crash_cfg()]);
        assert_eq!(many[0], serial, "run_fleet_many must match serial");
        assert_eq!(many[1], serial);
    }
}

/// The rendered `repro fleet` artifact is pinned byte-for-byte, like
/// the chaos and energy fixtures: any drift in steering draws, hedge
/// delays, health transitions, or the conservation roll-up shows up
/// here immediately. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test fleet`.
#[cfg(feature = "fault")]
#[test]
fn fleet_artifact_matches_golden_fixture() {
    use experiments::figures::fleet::{render, sweep};
    use experiments::Scale;
    let rendered = render(&sweep(Scale::Quick)).to_string();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_fleet.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test fleet",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "fleet artifact drifted against {}",
        path.display()
    );
}
