//! Property suite for the energy attribution profiler: across every
//! governor and three load points, the per-core microjoule
//! decomposition must be *integer-exact* — attributed components sum
//! to the measured total for every core (no residuals, no double
//! counting), the mode split partitions the same energy, and the RAPL
//! counter never has to clamp a regressing read. The flight recorder
//! rides along: its counters must be internally consistent and its
//! snapshots physically plausible for every governor.
//!
//! The rendered `energy` artifact is pinned as
//! `tests/golden/quick_energy.txt` (regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test energy_attribution`).

#![cfg(feature = "obs")]

use experiments::{run_many, GovernorKind, RunConfig, RunResult, Scale};
use nmap::NmapConfig;
use simcore::{DecisionTrigger, EnergyComponent, SimDuration};
use workload::{AppKind, LoadSpec};

fn every_governor() -> Vec<GovernorKind> {
    vec![
        GovernorKind::Performance,
        GovernorKind::Powersave,
        GovernorKind::Userspace(7),
        GovernorKind::Ondemand,
        GovernorKind::Conservative,
        GovernorKind::Schedutil,
        GovernorKind::IntelPowersave,
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(NmapConfig::new(32, 1.0)),
        GovernorKind::NmapOnline,
        GovernorKind::Ncap(50_000.0),
        GovernorKind::NcapMenu(50_000.0),
        GovernorKind::Parties,
    ]
}

/// Three operating points: comfortably idle (deep sleep and wake
/// transitions dominate), busy, and saturating (sustained polling and
/// ksoftirqd — the segments where role tagging is hardest to keep
/// exact).
fn loads() -> Vec<LoadSpec> {
    vec![
        LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
        LoadSpec::custom(150_000.0, SimDuration::from_millis(100), 0.4, 0.3),
        LoadSpec::custom(450_000.0, SimDuration::from_millis(100), 0.4, 0.3),
    ]
}

fn sweep() -> Vec<(GovernorKind, RunResult)> {
    let mut cells = Vec::new();
    let mut configs = Vec::new();
    for gov in every_governor() {
        for load in loads() {
            cells.push(gov);
            configs.push(RunConfig {
                warmup: SimDuration::from_millis(50),
                duration: SimDuration::from_millis(250),
                ..RunConfig::new(AppKind::Memcached, load, gov, Scale::Quick)
            });
        }
    }
    cells.into_iter().zip(run_many(configs)).collect()
}

/// The conservation identity, per cell: every microjoule the power
/// model emitted is attributed to exactly one component, the mode
/// split partitions the same core energy, and nothing forced the RAPL
/// counter to clamp.
fn assert_conserving(label: &str, r: &RunResult) {
    let e = &r.energy;
    assert!(
        e.measured_total_uj() > 0,
        "{label}: no energy measured over the window"
    );
    assert_eq!(
        e.measured_total_uj(),
        e.attributed_total_uj(),
        "{label}: attributed µJ drifted from measured µJ"
    );
    let mut core_total = 0u64;
    for c in &e.cores {
        assert_eq!(
            c.measured_uj,
            c.breakdown.total_uj(),
            "{label}: core {} attribution is not exact",
            c.core
        );
        core_total += c.measured_uj;
    }
    assert_eq!(
        e.modes.total_uj(),
        core_total,
        "{label}: interrupt + polling + transition must partition core energy"
    );
    assert_eq!(e.rapl_clamps, 0, "{label}: power integral regressed");
    assert!(
        e.uncore_uj > 0,
        "{label}: uncore burns for the whole window"
    );
    // The integer integral tracks the f64 energy the run reports
    // (remainder-carry quantization bounds per-core drift at 1 µJ).
    let f64_uj = r.energy_j * 1e6;
    let diff = (e.measured_total_uj() as f64 - f64_uj).abs();
    assert!(
        diff / f64_uj < 1e-4,
        "{label}: integer µJ {} vs f64 {} µJ",
        e.measured_total_uj(),
        f64_uj
    );
}

#[test]
fn attribution_is_integer_exact_for_every_governor_and_load() {
    for (gov, r) in sweep() {
        let label = format!("{gov:?}");
        assert_conserving(&label, &r);
        // Every run burns idle-C0 or sleep somewhere, and every run
        // that served requests spent busy energy on them.
        let e = &r.energy;
        let busy: u64 = [
            EnergyComponent::BusyP0,
            EnergyComponent::BusyHigh,
            EnergyComponent::BusyLow,
            EnergyComponent::BusyPmin,
        ]
        .iter()
        .map(|&c| e.component_uj(c))
        .sum();
        assert!(busy > 0, "{label}: requests served but no busy energy");
        assert!(
            e.component_uj(EnergyComponent::Irq) > 0,
            "{label}: packet delivery always costs IRQ energy"
        );
    }
}

#[test]
fn flight_recorder_is_consistent_for_every_governor() {
    let mut decided: Vec<(GovernorKind, u64)> = Vec::new();
    for (gov, r) in sweep() {
        let label = format!("{gov:?}");
        let f = &r.gov_flight;
        let by_trigger: u64 = f.by_trigger.iter().sum();
        assert_eq!(
            by_trigger, f.total,
            "{label}: per-trigger counts must sum to the total"
        );
        assert!(
            f.raises + f.lowers <= f.total,
            "{label}: directional counts exceed decisions"
        );
        assert_eq!(
            f.decisions.len() as u64 + f.evicted,
            f.total,
            "{label}: retained + evicted must equal recorded"
        );
        for d in &f.decisions {
            assert!(
                d.util_permille <= 1000,
                "{label}: utilization snapshot out of range"
            );
            assert!(d.to_pstate < 16, "{label}: implausible target P-state");
        }
        if f.total > 0 {
            assert!(
                DecisionTrigger::ALL.iter().any(|&t| f.trigger_count(t) > 0),
                "{label}: decisions must carry triggers"
            );
        }
        match decided.iter_mut().find(|(g, _)| *g == gov) {
            Some((_, n)) => *n += f.total,
            None => decided.push((gov, f.total)),
        }
    }
    // Static governors never act after their initial pin; every
    // dynamic governor decides somewhere across its three loads (a
    // single cell may legitimately sit still — conservative at steady
    // idle never crosses a threshold). Parties is excluded too: its
    // 500 ms latency-feedback period is longer than these 300 ms
    // runs, so it cannot fire before the cut.
    for (gov, total) in decided {
        let quiet = matches!(
            gov,
            GovernorKind::Performance
                | GovernorKind::Powersave
                | GovernorKind::Userspace(_)
                | GovernorKind::Parties
        );
        if !quiet {
            assert!(total > 0, "{gov:?}: dynamic governor never decided");
        }
    }
}

/// Conservation must survive fault injection: the chaos schedules
/// perturb IRQ delivery, wake timing, and DVFS latency, but every
/// joule still lands in exactly one bucket.
#[cfg(feature = "fault")]
#[test]
fn attribution_stays_exact_under_chaos_schedules() {
    use experiments::figures::chaos::plans;
    for (plan_label, plan) in plans() {
        let cfg = RunConfig::new(
            AppKind::Memcached,
            LoadSpec::custom(150_000.0, SimDuration::from_millis(100), 0.4, 0.3),
            GovernorKind::Nmap(NmapConfig::new(32, 1.0)),
            Scale::Quick,
        )
        .with_seed(7)
        .with_fault_plan(plan);
        let r = experiments::run(cfg);
        assert_conserving(&format!("chaos/{plan_label}"), &r);
    }
}

/// The `energy` artifact is deterministic: the same cells produce the
/// same summaries (and the same rendered bytes) whether they run
/// serially or through `run_many`'s worker threads.
#[test]
fn energy_artifact_is_identical_serial_and_parallel() {
    use experiments::figures::energy::{configs, render};
    let cells = configs(Scale::Quick);
    let serial: Vec<RunResult> = cells.iter().cloned().map(experiments::run).collect();
    let parallel = run_many(cells);
    assert_eq!(serial, parallel, "worker threads must not perturb results");
    assert_eq!(
        render(&serial).to_string(),
        render(&parallel).to_string(),
        "rendered artifact must be byte-identical"
    );
}

/// The rendered artifact is pinned byte-for-byte, like the chaos and
/// breakdown fixtures: any drift in the meter's quantization, the
/// mode-boundary flushes, or the flight recorder shows up here
/// immediately.
#[test]
fn energy_artifact_matches_golden_fixture() {
    let reports = experiments::figures::generate("energy", Scale::Quick);
    assert_eq!(reports.len(), 1);
    let rendered = reports[0].to_string();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_energy.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test energy_attribution",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "energy artifact drifted against {}",
        path.display()
    );
}
