//! Differential equivalence of the two scheduler backends.
//!
//! The timing wheel (`WheelSimulator`) must be observationally
//! indistinguishable from the binary-heap oracle (`HeapSimulator`):
//! identical pop order (including same-timestamp FIFO tie-breaks),
//! identical cancellation semantics (including post-cancellation
//! behaviour and stale handles), identical clocks and identical
//! engine profiles — under arbitrary interleavings of scheduling,
//! cancellation, rescheduling, nested event chains, and bounded runs.
//!
//! Workloads are generated through `simcore::check::forall`, so every
//! failing case names a reproducible RNG stream. The acceptance bar
//! from ISSUE 6 is ≥ 1 000 randomized schedules; the two properties
//! below run 1 024 + 256.

use simcore::check::forall;
use simcore::{
    EventId, HeapQueue, HeapSimulator, RngStream, SchedQueue, SimTime, Simulator, StepBudget,
    WheelQueue, WheelSimulator,
};

/// The observable log both backends must produce identically: one
/// entry per executed event, labelled by schedule index.
type Log = Vec<u64>;

/// One scripted operation, derived from the RNG up front so the exact
/// same script drives both simulators.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule event `label` at `now + delay_ns`; optionally the
    /// event itself schedules a follow-up chain (`chain` more events,
    /// `chain_gap_ns` apart — 0 exercises zero-delay
    /// self-rescheduling).
    Schedule {
        delay_ns: u64,
        chain: u8,
        chain_gap_ns: u64,
    },
    /// Cancel the `k % issued`-th handle issued so far (if any).
    Cancel { k: u64 },
    /// Run both simulators forward by `span_ns`.
    Run { span_ns: u64 },
}

/// Draws a delay that deliberately stresses wheel geometry: ties,
/// level boundaries (64^k), mid-range values, and far-future times
/// that land in the overflow list.
fn draw_delay(rng: &mut RngStream) -> u64 {
    match rng.below(10) {
        0 => 0,                                               // tie with "now"
        1 => rng.below(4),                                    // dense ties
        2 => [63u64, 64, 65][rng.below(3) as usize],          // level-0/1 boundary
        3 => [4_095u64, 4_096, 4_097][rng.below(3) as usize], // level-1/2 boundary
        4 => rng.below(1_000),
        5 => rng.below(100_000),
        6 => rng.below(10_000_000),
        7 => 262_144 + rng.below(64),        // exactly on a 64^3 block
        8 => rng.below(5_000_000_000),       // seconds-scale
        _ => (1 << 48) + rng.below(1 << 20), // beyond the wheel span
    }
}

fn draw_script(rng: &mut RngStream, ops: usize) -> Vec<Op> {
    (0..ops)
        .map(|_| match rng.below(10) {
            0..=4 => Op::Schedule {
                delay_ns: draw_delay(rng),
                chain: (rng.below(4) == 0) as u8 * (1 + rng.below(3) as u8),
                chain_gap_ns: if rng.below(3) == 0 { 0 } else { rng.below(200) },
            },
            5..=6 => Op::Cancel { k: rng.next_u64() },
            _ => Op::Run {
                span_ns: draw_delay(rng).saturating_add(1),
            },
        })
        .collect()
}

/// The event body: record the label, then (for chains) schedule the
/// next link at `now + gap`. Labels of chained events reuse the
/// parent label with a distinguishing high bit so both backends log
/// identically without sharing handle tables.
fn fire<Q: SchedQueue + 'static>(
    sim: &mut Simulator<Log, Q>,
    w: &mut Log,
    label: u64,
    chain: u8,
    gap: u64,
) {
    w.push(label);
    if chain > 0 {
        let next = sim.now() + simcore::SimDuration::from_nanos(gap);
        sim.schedule_at(next, move |w, sim| {
            fire(sim, w, label | 1 << 62, chain - 1, gap)
        });
    }
}

/// Replays `script` on one backend, returning the execution log, the
/// cancel-result bitmap, and the final `(now, profile)` observation.
fn replay<Q: SchedQueue + 'static>(
    script: &[Op],
) -> (Log, Vec<bool>, SimTime, simcore::EngineProfile) {
    let mut sim: Simulator<Log, Q> = Simulator::new();
    let mut log: Log = Vec::new();
    let mut handles: Vec<EventId> = Vec::new();
    let mut cancels = Vec::new();
    for op in script {
        match *op {
            Op::Schedule {
                delay_ns,
                chain,
                chain_gap_ns,
            } => {
                let label = handles.len() as u64;
                let at = sim.now() + simcore::SimDuration::from_nanos(delay_ns);
                let id =
                    sim.schedule_at(at, move |w, sim| fire(sim, w, label, chain, chain_gap_ns));
                handles.push(id);
            }
            Op::Cancel { k } => {
                if !handles.is_empty() {
                    let id = handles[(k % handles.len() as u64) as usize];
                    cancels.push(sim.cancel(id));
                }
            }
            Op::Run { span_ns } => {
                let deadline = sim.now() + simcore::SimDuration::from_nanos(span_ns);
                sim.run_until(&mut log, deadline);
            }
        }
    }
    // Drain everything, overflow included.
    sim.run_until(&mut log, SimTime::MAX);
    (log, cancels, sim.now(), sim.profile())
}

/// ISSUE 6 acceptance: wheel ≡ heap pop-order equivalence, ties and
/// cancellations included, over ≥ 1 000 randomized schedules.
#[test]
fn wheel_matches_heap_oracle_on_random_workloads() {
    forall("wheel equals heap", 1_024, |rng| {
        let ops = 4 + rng.below(120) as usize;
        let script = draw_script(rng, ops);
        let wheel = replay::<WheelQueue>(&script);
        let heap = replay::<HeapQueue>(&script);
        assert_eq!(wheel.0, heap.0, "pop order diverged");
        assert_eq!(wheel.1, heap.1, "cancel results diverged");
        assert_eq!(wheel.2, heap.2, "clocks diverged");
        assert_eq!(wheel.3, heap.3, "profiles diverged");
    });
}

/// Tie-heavy stress: thousands of events over a handful of distinct
/// timestamps, with mid-run cancellations inside tie groups. FIFO
/// order within each timestamp must match the oracle exactly.
#[test]
fn wheel_matches_heap_on_dense_tie_groups() {
    forall("dense ties", 256, |rng| {
        let stamps: Vec<u64> = (0..4).map(|_| rng.below(10_000)).collect();
        let n = 64 + rng.below(512);
        let kills: Vec<u64> = (0..n / 7).map(|_| rng.below(n)).collect();

        fn run_one<Q: SchedQueue + 'static>(
            stamps: &[u64],
            n: u64,
            kills: &[u64],
        ) -> (Log, Vec<bool>) {
            let mut sim: Simulator<Log, Q> = Simulator::new();
            let mut log = Vec::new();
            let ids: Vec<EventId> = (0..n)
                .map(|i| {
                    let t = SimTime::from_nanos(stamps[(i % stamps.len() as u64) as usize]);
                    sim.schedule_at(t, move |w: &mut Log, _| w.push(i))
                })
                .collect();
            let outcomes = kills.iter().map(|&k| sim.cancel(ids[k as usize])).collect();
            sim.run_until(&mut log, SimTime::MAX);
            (log, outcomes)
        }

        let wheel = run_one::<WheelQueue>(&stamps, n, &kills);
        let heap = run_one::<HeapQueue>(&stamps, n, &kills);
        assert_eq!(wheel, heap);
    });
}

/// Budgeted runs abort at the same event count, at the same virtual
/// time, mid-tick-batch or not, on both backends.
#[test]
fn budgeted_runs_match_across_backends() {
    forall("budget equivalence", 128, |rng| {
        let n = 16 + rng.below(64);
        let cap = 1 + rng.below(n);
        let times: Vec<u64> = (0..n).map(|_| rng.below(64)).collect(); // heavy ties

        fn run_one<Q: SchedQueue + 'static>(times: &[u64], cap: u64) -> (Log, SimTime, bool) {
            let mut sim: Simulator<Log, Q> = Simulator::new();
            let mut log = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                let label = i as u64;
                sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Log, _| w.push(label));
            }
            let budget = StepBudget::unlimited().with_max_events(cap);
            let aborted = sim
                .run_until_budgeted(&mut log, SimTime::MAX, &budget)
                .is_err();
            (log, sim.now(), aborted)
        }

        let wheel = run_one::<WheelQueue>(&times, cap);
        let heap = run_one::<HeapQueue>(&times, cap);
        assert_eq!(wheel, heap);
    });
}

/// Sanity: the type aliases really pin their backends regardless of
/// the `heap-sched` feature, so the differential suite means what it
/// says under either default.
#[test]
fn pinned_aliases_execute() {
    let mut w: WheelSimulator<u32> = Simulator::new();
    let mut h: HeapSimulator<u32> = Simulator::new();
    let mut a = 0u32;
    let mut b = 0u32;
    w.schedule_at(SimTime::from_nanos(3), |x: &mut u32, _| *x += 1);
    h.schedule_at(SimTime::from_nanos(3), |x: &mut u32, _| *x += 1);
    w.run_until(&mut a, SimTime::from_micros(1));
    h.run_until(&mut b, SimTime::from_micros(1));
    assert_eq!((a, b), (1, 1));
}
