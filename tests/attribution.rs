//! Property suite for the latency attribution profiler: across every
//! governor and three load points, the per-stage decomposition must be
//! *exact* — stage sums equal the measured end-to-end latency for
//! every single request (no residuals, no double counting), and the
//! streaming watchdog must see every sample the client measured.

#![cfg(feature = "obs")]

use experiments::{run_many, GovernorKind, RunConfig, RunResult, Scale};
use nmap::NmapConfig;
use simcore::{SimDuration, Stage};
use workload::{AppKind, LoadSpec};

fn every_governor() -> Vec<GovernorKind> {
    vec![
        GovernorKind::Performance,
        GovernorKind::Powersave,
        GovernorKind::Userspace(7),
        GovernorKind::Ondemand,
        GovernorKind::Conservative,
        GovernorKind::Schedutil,
        GovernorKind::IntelPowersave,
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(NmapConfig::new(32, 1.0)),
        GovernorKind::NmapOnline,
        GovernorKind::Ncap(50_000.0),
        GovernorKind::NcapMenu(50_000.0),
        GovernorKind::Parties,
    ]
}

/// Three operating points: comfortably idle, busy, and saturating
/// (the last overflows into ksoftirqd handoffs and preemption, the
/// paths where attribution is hardest to keep exact).
fn loads() -> Vec<LoadSpec> {
    vec![
        LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
        LoadSpec::custom(150_000.0, SimDuration::from_millis(100), 0.4, 0.3),
        LoadSpec::custom(450_000.0, SimDuration::from_millis(100), 0.4, 0.3),
    ]
}

fn sweep() -> Vec<(GovernorKind, RunResult)> {
    let mut cells = Vec::new();
    let mut configs = Vec::new();
    for gov in every_governor() {
        for load in loads() {
            cells.push(gov);
            configs.push(RunConfig {
                warmup: SimDuration::from_millis(50),
                duration: SimDuration::from_millis(250),
                ..RunConfig::new(AppKind::Memcached, load, gov, Scale::Quick)
            });
        }
    }
    cells.into_iter().zip(run_many(configs)).collect()
}

#[test]
fn stage_sums_equal_e2e_for_every_governor_and_load() {
    for (gov, r) in sweep() {
        let a = &r.attrib;
        assert!(a.requests > 0, "{gov:?}: no requests attributed");
        assert_eq!(
            a.requests, r.received,
            "{gov:?}: every measured response must be attributed"
        );
        assert_eq!(
            a.mismatches, 0,
            "{gov:?}: some request's stage sum missed its e2e latency"
        );
        assert_eq!(
            a.attributed_total_ns, a.e2e_total_ns,
            "{gov:?}: aggregate attribution drifted from measured latency"
        );
        // The shares therefore partition 1 exactly.
        let total: f64 = Stage::ALL.iter().map(|&s| a.share(s)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{gov:?}: shares sum to {total}");
        // Ideal service time is priced at the fastest P-state, so it
        // can never be absent while requests completed.
        let service = a.stage(Stage::AppService).expect("service stage");
        assert!(service.sum_ns > 0, "{gov:?}: no service time attributed");
        // The watchdog ingests the same stream the client measures.
        assert_eq!(
            r.watchdog.samples, r.received,
            "{gov:?}: watchdog missed samples"
        );
    }
}

#[test]
fn slow_governors_accumulate_stall_where_fast_ones_do_not() {
    let app = AppKind::Memcached;
    let load = LoadSpec::custom(150_000.0, SimDuration::from_millis(100), 0.4, 0.3);
    let mk = |gov| RunConfig {
        warmup: SimDuration::from_millis(50),
        duration: SimDuration::from_millis(250),
        ..RunConfig::new(app, load, gov, Scale::Quick)
    };
    let results = run_many(vec![
        mk(GovernorKind::Performance),
        mk(GovernorKind::Powersave),
    ]);
    // Performance pins P0, so its stall share is only the integer
    // rounding residue of chunked execution (well under 1%);
    // powersave pins the slowest P-state, so a large share of its
    // service time is stall.
    let share = |r: &RunResult| r.attrib.share(Stage::PstateStall);
    assert!(
        share(&results[0]) < 0.01,
        "performance at P0 should have (near-)zero stall share, got {}",
        share(&results[0])
    );
    assert!(
        share(&results[1]) > share(&results[0]) * 10.0,
        "powersave stall share ({}) should dwarf performance's ({})",
        share(&results[1]),
        share(&results[0])
    );
}
