//! Regression tests pinning the paper's headline claims at quick
//! scale — the assertions EXPERIMENTS.md reports at full scale.
//! These are the repository's "does it still reproduce the paper"
//! canary: if a refactor breaks one of these, the reproduction broke.

use experiments::{run, thresholds, GovernorKind, RunConfig, Scale};
use simcore::SimDuration;
use workload::{AppKind, LoadLevel, LoadSpec};

fn cell(app: AppKind, level: LoadLevel, gov: GovernorKind) -> experiments::RunResult {
    run(RunConfig::new(
        app,
        LoadSpec::preset(app, level),
        gov,
        Scale::Quick,
    ))
}

#[test]
fn claim_nmap_meets_every_slo() {
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let gov = GovernorKind::Nmap(thresholds::nmap_config(app));
        for level in LoadLevel::all() {
            let r = cell(app, level, gov);
            assert!(
                r.meets_slo(),
                "NMAP violated at {app}/{level}: p99 {} vs SLO {}",
                r.p99,
                r.slo
            );
        }
    }
}

#[test]
fn claim_ondemand_violates_at_medium_and_high_only() {
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let low = cell(app, LoadLevel::Low, GovernorKind::Ondemand);
        assert!(low.meets_slo(), "{app}: ondemand must be fine at low load");
        for level in [LoadLevel::Medium, LoadLevel::High] {
            // The violation cells measure 1.5 s instead of quick
            // scale's 0.8 s: nginx/medium sits near the SLO boundary
            // and its p99 needs the longer window to stabilize.
            let r = run(RunConfig {
                warmup: SimDuration::from_millis(200),
                duration: SimDuration::from_millis(1_500),
                ..RunConfig::new(
                    app,
                    LoadSpec::preset(app, level),
                    GovernorKind::Ondemand,
                    Scale::Quick,
                )
            });
            assert!(
                !r.meets_slo(),
                "{app}/{level}: ondemand must violate (p99 {})",
                r.p99
            );
        }
    }
}

#[test]
fn claim_performance_meets_every_slo_at_peak_energy() {
    for app in [AppKind::Memcached, AppKind::Nginx] {
        for level in LoadLevel::all() {
            let perf = cell(app, level, GovernorKind::Performance);
            assert!(perf.meets_slo(), "{app}/{level}: performance violated");
            let ond = cell(app, level, GovernorKind::Ondemand);
            assert!(
                perf.energy_j > ond.energy_j,
                "{app}/{level}: performance must out-consume ondemand"
            );
        }
    }
}

#[test]
fn claim_nmap_saves_energy_vs_performance_most_at_low_load() {
    let gov = GovernorKind::Nmap(thresholds::nmap_config(AppKind::Memcached));
    let mut savings = Vec::new();
    for level in LoadLevel::all() {
        let nmap = cell(AppKind::Memcached, level, gov);
        let perf = cell(AppKind::Memcached, level, GovernorKind::Performance);
        savings.push(1.0 - nmap.energy_j / perf.energy_j);
    }
    assert!(
        savings[0] > 0.15,
        "low-load saving {:.3} too small",
        savings[0]
    );
    assert!(
        savings[0] > savings[1] && savings[1] >= savings[2] - 0.02,
        "savings must shrink with load: {savings:?}"
    );
    assert!(savings[2] > 0.0, "even high load must save something");
}

#[test]
fn claim_intel_powersave_pins_p0_with_disable() {
    use experiments::SleepKind;
    let load = LoadSpec::preset(AppKind::Memcached, LoadLevel::Medium);
    let r = run(RunConfig::new(
        AppKind::Memcached,
        load,
        GovernorKind::IntelPowersave,
        Scale::Quick,
    )
    .with_sleep(SleepKind::Disable));
    // §6.2: with disable, CC0 residency reads 100% → always P0 →
    // meets the SLO like performance does.
    assert!(
        r.meets_slo(),
        "intel_powersave+disable must behave like performance (p99 {})",
        r.p99
    );
    let menu = cell(
        AppKind::Memcached,
        LoadLevel::Medium,
        GovernorKind::IntelPowersave,
    );
    assert!(
        !menu.meets_slo(),
        "with menu it must violate at medium load"
    );
}

#[test]
fn claim_nmap_undercuts_ncap_energy_at_medium_and_high() {
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let nmap_gov = GovernorKind::Nmap(thresholds::nmap_config(app));
        let ncap_gov = GovernorKind::Ncap(thresholds::ncap_threshold(app));
        for level in [LoadLevel::Medium, LoadLevel::High] {
            let nmap = cell(app, level, nmap_gov);
            let ncap = cell(app, level, ncap_gov);
            assert!(ncap.meets_slo(), "{app}/{level}: NCAP must meet the SLO");
            assert!(
                nmap.energy_j < ncap.energy_j,
                "{app}/{level}: NMAP ({:.1} J) must undercut NCAP ({:.1} J)",
                nmap.energy_j,
                ncap.energy_j
            );
        }
    }
}

#[test]
fn claim_retransition_latency_blocks_per_request_dvfs() {
    // §5.1's arithmetic on our Gold 6134 model: at the high preset the
    // per-core request inter-arrival is far shorter than one
    // re-transition, so per-request V/F control cannot keep up.
    let profile = cpusim::ProcessorProfile::xeon_gold_6134();
    let retrans = SimDuration::from_micros_f64(profile.retransition.mean_micros(true, 1.0));
    let load = LoadSpec::preset(AppKind::Memcached, LoadLevel::High);
    let per_core_interarrival = SimDuration::from_secs_f64(profile.cores as f64 / load.peak_rps());
    assert!(
        retrans > per_core_interarrival * 50,
        "re-transition ({retrans}) must dwarf the inter-arrival ({per_core_interarrival})"
    );
}

#[test]
fn claim_online_adaptation_matches_offline_profiling() {
    // Beyond-paper: the self-calibrating variant must also meet the
    // SLO at the hardest cell of each application.
    for app in [AppKind::Memcached, AppKind::Nginx] {
        let r = cell(app, LoadLevel::High, GovernorKind::NmapOnline);
        assert!(
            r.meets_slo(),
            "NMAP-online violated at {app}/high: p99 {}",
            r.p99
        );
    }
}
