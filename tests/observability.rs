//! End-to-end observability: a traced NMAP run must surface every
//! instrumentation layer (IRQ, NAPI mode, ksoftirqd, P-/C-states,
//! requests) in the Perfetto export, and its metrics snapshot must be
//! populated and deterministic.

#![cfg(feature = "obs")]

use experiments::{perfetto_json, thresholds, GovernorKind, RunConfig, RunResult, Scale};
use simcore::SimDuration;
use workload::{AppKind, LoadLevel, LoadSpec};

fn traced_nmap_run() -> RunResult {
    let app = AppKind::Memcached;
    experiments::run(
        RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(200),
            ..RunConfig::new(
                app,
                LoadSpec::preset(app, LoadLevel::High),
                GovernorKind::Nmap(thresholds::nmap_config(app)),
                Scale::Quick,
            )
        }
        .with_seed(7)
        .with_traces(),
    )
}

/// A minimal JSON structural check: balanced braces/brackets outside
/// strings, with string escapes honoured. Not a full parser, but it
/// catches truncated output, bad escaping, and mismatched nesting —
/// the realistic failure modes of a hand-rolled emitter.
fn assert_json_balanced(s: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth.push('}'),
            '[' => depth.push(']'),
            '}' | ']' => {
                assert_eq!(depth.pop(), Some(c), "mismatched bracket in JSON output");
            }
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string in JSON output");
    assert!(depth.is_empty(), "unclosed brackets in JSON output");
}

#[test]
fn nmap_run_exports_all_track_types() {
    let result = traced_nmap_run();
    let traces = result.traces.as_ref().expect("traces collected");
    assert!(!traces.trace.is_empty(), "trace buffer must carry events");
    assert_eq!(traces.trace.dropped(), 0, "quick run must fit in capacity");

    let json = perfetto_json(&traces.trace);
    assert_json_balanced(&json);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\""));

    // Every major instrumentation layer must produce a named track.
    for track in [
        "irq",
        "napi-mode",
        "ksoftirqd",
        "pstate",
        "cstate",
        "requests",
        "slo",
        "timeline",
    ] {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"{track}\"}}")),
            "missing {track} track in Perfetto export"
        );
    }
    // Tracks must span multiple cores (the quick topology has several).
    assert!(
        json.contains("\"name\":\"core 0\"") && json.contains("\"name\":\"core 1\""),
        "expected per-core process names for at least two cores"
    );
    // Span begins pair with ends somewhere in the stream.
    assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    assert!(json.contains("\"ph\":\"i\""), "instant events expected");
    // The SLO watchdog publishes its online percentile and the
    // attribution stage shares as counter tracks.
    for counter in ["p99-online", "p50-online", "share-service", "share-ring"] {
        assert!(
            json.contains(&format!("\"name\":\"{counter}\"")),
            "missing {counter} counter in Perfetto export"
        );
    }
}

#[test]
fn metrics_snapshot_is_populated_and_consistent() {
    let result = traced_nmap_run();
    let m = &result.metrics;
    assert!(!m.is_empty(), "obs-on run must produce metrics");
    // Core counters from each instrumented layer.
    for key in [
        "nic.rx_enqueued",
        "napi.mode_transitions",
        "cpu.dvfs_transitions",
        "nmap.ni_notifications",
        "client.sent",
        "client.received",
        "engine.events_executed",
    ] {
        assert!(
            m.counter(key).is_some(),
            "metric {key} missing from snapshot:\n{}",
            m.render()
        );
    }
    // Cross-check against the result's own aggregates.
    assert_eq!(m.counter("client.received"), Some(result.received));
    // Conservation: every packet the NAPI layer saw entered via the NIC.
    let polled = m.counter("nic.rx_polled").unwrap_or(0);
    let enq = m.counter("nic.rx_enqueued").unwrap_or(0);
    assert!(
        polled <= enq,
        "polled {polled} cannot exceed enqueued {enq}"
    );
    // The rendered form is stable: one line per metric, counters in
    // sorted key order with no duplicates.
    let rendered = m.render();
    assert!(
        rendered.lines().count() >= 10,
        "snapshot suspiciously small"
    );
    let keys: Vec<&str> = rendered
        .lines()
        .filter_map(|l| l.strip_prefix("counter "))
        .filter_map(|l| l.split('=').next())
        .collect();
    assert!(!keys.is_empty());
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted, "counters must render sorted and unique");
}

#[test]
fn traced_runs_are_deterministic() {
    let a = traced_nmap_run();
    let b = traced_nmap_run();
    assert_eq!(a, b, "traced runs must be bit-identical across repeats");
    assert_eq!(
        a.metrics.render(),
        b.metrics.render(),
        "metrics render must be byte-identical"
    );
    // The streaming estimators (attribution aggregate and windowed
    // watchdog) are part of RunResult's equality above; assert them
    // separately so a future derive change can't silently drop them.
    assert_eq!(a.attrib, b.attrib, "attribution summary must reproduce");
    assert_eq!(a.watchdog, b.watchdog, "watchdog report must reproduce");
    assert!(a.attrib.requests > 0 && a.watchdog.samples > 0);
    let ja = perfetto_json(&a.traces.as_ref().unwrap().trace);
    let jb = perfetto_json(&b.traces.as_ref().unwrap().trace);
    assert_eq!(ja, jb, "Perfetto export must be byte-identical");
}

#[test]
fn attribution_metrics_cross_check_the_summary() {
    let result = traced_nmap_run();
    let m = &result.metrics;
    // The per-stage histograms aggregate exactly what the summary
    // reports, and the counter mirrors close the loop.
    assert_eq!(m.counter("attrib.requests"), Some(result.attrib.requests));
    assert_eq!(m.counter("attrib.mismatches"), Some(0));
    assert_eq!(m.counter("slo.samples"), Some(result.watchdog.samples));
    assert_eq!(
        m.counter("slo.episodes"),
        Some(u64::from(result.watchdog.episodes))
    );
    for stage in simcore::Stage::ALL {
        let summary = result.attrib.stage(stage).expect("stage present");
        let hist = m
            .histogram(stage.metric_key())
            .unwrap_or_else(|| panic!("missing {} histogram", stage.metric_key()));
        assert_eq!(
            hist.count, result.attrib.requests,
            "{stage:?}: one observation per request"
        );
        assert_eq!(
            hist.sum, summary.sum_ns,
            "{stage:?}: histogram sum must equal attributed nanoseconds"
        );
    }
}

/// The fleet tier's metrics snapshot mirrors its summary exactly:
/// every retry/hedge/duplicate-suppression counter and every health
/// ejection/readmission in `FleetResult` has an identical
/// `fleet.*` counter, so dashboards built on the snapshot can never
/// drift from the conservation roll-up the summary enforces.
#[test]
fn fleet_metrics_snapshot_matches_summary() {
    use cluster::{run_fleet, FleetConfig, HedgePolicy};

    let cfg = FleetConfig::new(4, AppKind::Memcached, 32_000.0, GovernorKind::Ondemand)
        .with_window(SimDuration::from_millis(30), SimDuration::from_millis(120))
        .with_seed(17)
        // An eager hedge (fires at the online median) so the
        // duplicate-suppression path is exercised even on a calm run.
        .with_hedge(Some(HedgePolicy {
            quantile: 0.5,
            floor: SimDuration::from_nanos(1),
        }));
    // With fault injection compiled in, drop a crash window on server
    // 1 so ejection/readmission and crash-failure counters go live.
    #[cfg(feature = "fault")]
    let cfg = {
        use simcore::{FaultKind, FaultPlan, FaultScope, SimTime};
        let ms = |v: u64| SimTime::ZERO + SimDuration::from_millis(v);
        cfg.with_fault_plan(FaultPlan::new().with_seed(9).inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(50), ms(100)).on_core(1),
        ))
    };
    let r = run_fleet(cfg);
    let c = |key: &str| {
        r.metrics
            .counter(key)
            .unwrap_or_else(|| panic!("metric {key} missing:\n{}", r.metrics.render()))
    };
    assert_eq!(c("fleet.requests.admitted"), r.admitted);
    assert_eq!(c("fleet.requests.completed"), r.completed);
    assert_eq!(c("fleet.requests.timed_out"), r.timed_out);
    assert_eq!(c("fleet.requests.in_flight"), r.in_flight_at_end);
    assert_eq!(c("fleet.attempts.dispatched"), r.dispatched);
    assert_eq!(c("fleet.attempts.completed"), r.attempts_completed);
    assert_eq!(c("fleet.attempts.failed"), r.attempts_failed);
    assert_eq!(c("fleet.attempts.suppressed"), r.suppressed);
    assert_eq!(c("fleet.attempts.in_flight"), r.attempts_in_flight_at_end);
    assert_eq!(c("fleet.retries"), r.retries);
    assert_eq!(c("fleet.hedges"), r.hedges);
    assert_eq!(c("fleet.failovers"), r.failovers);
    assert_eq!(c("fleet.health.ejections"), r.ejections);
    assert_eq!(c("fleet.health.readmissions"), r.readmissions);
    assert_eq!(c("fleet.churned_flows"), r.churned_flows);
    let crashes: u64 = r.servers.iter().map(|s| s.crashes).sum();
    assert_eq!(c("fleet.server_crashes"), crashes);
    // Overload-control counters are always published, even with the
    // controls off — dashboards can rely on the families existing.
    assert_overload_counters_reconcile(&r);
    // The eager hedge must actually race real responses.
    assert!(r.hedges > 0, "median-delay hedging produced no hedges");
    assert!(r.suppressed > 0, "winning duplicates must be suppressed");
    #[cfg(feature = "fault")]
    {
        assert!(r.ejections >= 1 && r.readmissions >= 1);
        assert_eq!(crashes, 1);
    }
}

/// Every `fleet.shed.*` / `fleet.breaker.*` / `retry_budget.*`
/// counter in the snapshot equals the matching `FleetResult` field.
fn assert_overload_counters_reconcile(r: &cluster::FleetResult) {
    let c = |key: &str| {
        r.metrics
            .counter(key)
            .unwrap_or_else(|| panic!("metric {key} missing:\n{}", r.metrics.render()))
    };
    assert_eq!(c("fleet.shed.requests"), r.shed);
    assert_eq!(c("fleet.shed.attempts"), r.attempts_shed);
    assert_eq!(c("fleet.breaker.opens"), r.breaker_opens);
    assert_eq!(c("fleet.breaker.closes"), r.breaker_closes);
    assert_eq!(c("fleet.breaker.half_opens"), r.breaker_half_opens);
    assert_eq!(c("fleet.breaker.short_circuits"), r.breaker_short_circuits);
    assert_eq!(c("retry_budget.spent"), r.retry_budget_spent);
    assert_eq!(c("retry_budget.denied"), r.retry_budget_denied);
}

/// With overload control engaged and a crash forcing retries, the
/// shed/breaker/budget counters go live and still reconcile exactly
/// with the run summary — the dashboard view of an overloaded fleet
/// can never drift from the audited one.
#[cfg(feature = "fault")]
#[test]
fn overload_metrics_reconcile_when_control_engages() {
    use cluster::{run_fleet, FleetConfig, RetryPolicy};
    use simcore::{FaultKind, FaultPlan, FaultScope, SimTime};

    let ms = |v: u64| SimTime::ZERO + SimDuration::from_millis(v);
    let cfg = FleetConfig::new(2, AppKind::Memcached, 48_000.0, GovernorKind::Ondemand)
        .with_window(SimDuration::from_millis(30), SimDuration::from_millis(120))
        .with_seed(23)
        .with_overload_control()
        // A tight retry policy so the crash window drains the budget
        // and trips the breaker on the dead server.
        .with_retry(RetryPolicy {
            timeout: SimDuration::from_millis(1),
            max_attempts: 5,
            backoff_base: SimDuration::from_micros(100),
            backoff_cap: SimDuration::from_micros(500),
        })
        .with_fault_plan(FaultPlan::new().with_seed(5).inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(50), ms(110)).on_core(1),
        ));
    let r = run_fleet(cfg);
    assert_overload_counters_reconcile(&r);
    assert!(
        r.breaker_opens > 0,
        "a 60 ms crash window must trip the dead server's breaker"
    );
    assert!(
        r.retry_budget_spent > 0,
        "timeout retries must draw on the budget"
    );
    assert!(r.audit.is_balanced(), "roll-up unbalanced");
}
