#!/usr/bin/env python3
"""Scheduler-microbench regression gate (ISSUE 6).

Absolute events/sec is meaningless across heterogeneous CI runners, so
every `scheduler/*` workload runs on the timing wheel AND the binary-
heap oracle, and the gate compares the heap/wheel speedup ratio —
the oracle run cancels machine speed out of the quotient.

Two kinds of checks, with different teeth:

* **Hard** — the machine-independent 5x acceptance floor from ISSUE 6:
  the wheel must dispatch >=5x the oracle's events/sec on the
  standing-population workload. Noise cannot produce a 5x-to-sub-5x
  swing, so this always fails the job.
* **Advisory** — the speedup ratio vs the checked-in
  `BENCH_baseline.json`. Even with the oracle normalization, a noisy
  neighbor on a shared runner can skew one side of the quotient, so a
  >10% ratio drop prints a prominent warning (and a GitHub error
  annotation when running in Actions) instead of failing unrelated
  PRs spuriously. Treat a warning that reproduces across runs as a
  real regression.

Ratios use `min_ns` (fastest of N samples): scheduler interference
only ever adds time, so the minimum is the noise-robust estimate of
the true cost. Pre-`min_ns` reports fall back to `mean_ns`.

Usage: bench_gate.py [BENCH_repro.json [BENCH_baseline.json]]
"""

import json
import os
import sys

# Workloads gated against the baseline (each has wheel_* and heap_*).
WORKLOADS = ["churn_100k", "bursts_64k", "standing_1m"]
# Max tolerated drop in the heap/wheel speedup ratio vs the baseline
# before the advisory warning fires.
TOLERANCE = 0.10
# Hard acceptance floor from ISSUE 6, machine-independent by design:
# the wheel must dispatch >=5x the oracle's events/sec on the
# standing-population workload.
ACCEPTANCE = {"standing_1m": 5.0}
# Max tolerated telemetry-sampling overhead (advisory): the timeline
# cell with a 1 us sampler vs the same cell with sampling off, from
# the same run so machine speed cancels. Both entries come from
# `cargo bench -p nmap-bench --bench timeline`; absent entries skip
# the check (the timeline bench is not part of every lane).
TIMELINE_OVERHEAD = 0.03
# Max tolerated chaos-to-calm slowdown on the fleet cell (advisory):
# both entries come from the same `cargo bench -p nmap-bench --bench
# fleet` run, so machine speed cancels. Chaos normally runs *cheaper*
# than calm (crash windows instant-fail attempts instead of
# simulating them); a blow-up past this ceiling means the
# retry/hedge/probe machinery started storming. Absent entries skip
# the check (the fleet bench is not part of every lane).
FLEET_OVERHEAD = 1.00
# Max tolerated admission-gate overhead on a calm fleet (advisory):
# the overload cell with the full control stack on vs the same cell
# with unbounded queues, from the same `cargo bench -p nmap-bench
# --bench overload` run so machine speed cancels. On a calm fleet the
# gate admits everything, so this is pure bookkeeping cost. Absent
# entries skip the check.
OVERLOAD_OVERHEAD = 0.03


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b.get("min_ns", b["mean_ns"]) for b in doc["benchmarks"]}


def speedup(stats, workload, baseline="heap"):
    wheel = stats.get(f"scheduler/wheel_{workload}")
    other = stats.get(f"scheduler/{baseline}_{workload}")
    if not wheel or not other:
        return None
    return other / wheel


def main():
    current_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_repro.json"
    baseline_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_baseline.json"
    current = load(current_path)
    baseline = load(baseline_path)

    failures = []  # hard: fail the job
    warnings = []  # advisory: print loudly, exit 0
    for workload in WORKLOADS:
        now = speedup(current, workload)
        ref = speedup(baseline, workload)
        if now is None:
            # A missing workload is a broken bench harness, not noise.
            failures.append(f"{workload}: missing from {current_path}")
            continue
        if ref is None:
            failures.append(f"{workload}: missing from {baseline_path}")
            continue
        floor = ref * (1.0 - TOLERANCE)
        status = "ok" if now >= floor else "WARN: below baseline"
        print(
            f"{workload:14} wheel speedup {now:5.2f}x over heap oracle "
            f"(baseline {ref:5.2f}x, advisory floor {floor:5.2f}x) {status}"
        )
        if now < floor:
            warnings.append(
                f"{workload}: speedup {now:.2f}x fell >10% below baseline {ref:.2f}x"
            )
        hard = ACCEPTANCE.get(workload)
        if hard is not None and now < hard:
            failures.append(
                f"{workload}: speedup {now:.2f}x is below the {hard:.0f}x acceptance floor"
            )

    # Informational: the pre-wheel seed engine (boxed actions inside
    # the heap + HashSet live-set), the honest before/after pair.
    for workload in WORKLOADS:
        seed = speedup(current, workload, baseline="seed")
        if seed is not None:
            print(f"{workload:14} wheel speedup {seed:5.2f}x over seed engine")

    # Advisory: telemetry-sampler overhead on the timeline cell, same
    # run so machine speed cancels. Skipped when the timeline bench
    # did not run in this lane.
    for suffix in ("obs_on", "obs_off"):
        on = current.get(f"timeline_cell/sampler_1us_{suffix}")
        off = current.get(f"timeline_cell/sampler_off_{suffix}")
        if not on or not off:
            continue
        overhead = on / off - 1.0
        status = "ok" if overhead <= TIMELINE_OVERHEAD else "WARN: over budget"
        print(
            f"timeline_cell  1us-sampler overhead {overhead * 100:+5.2f}% "
            f"({suffix}, advisory ceiling {TIMELINE_OVERHEAD * 100:.0f}%) {status}"
        )
        if overhead > TIMELINE_OVERHEAD:
            warnings.append(
                f"timeline_cell ({suffix}): sampling overhead "
                f"{overhead * 100:.2f}% exceeds {TIMELINE_OVERHEAD * 100:.0f}%"
            )

    # Advisory: chaos-schedule overhead on the fleet cell, same run
    # so machine speed cancels. Skipped when the fleet bench did not
    # run in this lane.
    for suffix in ("fault_on", "fault_off"):
        chaos = current.get(f"fleet_cell/chaos_{suffix}")
        calm = current.get(f"fleet_cell/calm_{suffix}")
        if not chaos or not calm:
            continue
        overhead = chaos / calm - 1.0
        status = "ok" if overhead <= FLEET_OVERHEAD else "WARN: over budget"
        print(
            f"fleet_cell     chaos overhead {overhead * 100:+6.2f}% "
            f"({suffix}, advisory ceiling {FLEET_OVERHEAD * 100:.0f}%) {status}"
        )
        if overhead > FLEET_OVERHEAD:
            warnings.append(
                f"fleet_cell ({suffix}): chaos overhead "
                f"{overhead * 100:.2f}% exceeds {FLEET_OVERHEAD * 100:.0f}% — "
                "retry/hedge/probe machinery may be storming"
            )

    # Advisory: admission-gate overhead on the calm overload cell,
    # same run so machine speed cancels. Skipped when the overload
    # bench did not run in this lane.
    for suffix in ("fault_on", "fault_off"):
        on = current.get(f"overload_cell/admission_on_{suffix}")
        off = current.get(f"overload_cell/admission_off_{suffix}")
        if not on or not off:
            continue
        overhead = on / off - 1.0
        status = "ok" if overhead <= OVERLOAD_OVERHEAD else "WARN: over budget"
        print(
            f"overload_cell  admission overhead {overhead * 100:+5.2f}% "
            f"({suffix}, advisory ceiling {OVERLOAD_OVERHEAD * 100:.0f}%) {status}"
        )
        if overhead > OVERLOAD_OVERHEAD:
            warnings.append(
                f"overload_cell ({suffix}): admission overhead "
                f"{overhead * 100:.2f}% exceeds {OVERLOAD_OVERHEAD * 100:.0f}%"
            )

    if warnings:
        print("\nbench gate ADVISORY (not failing the job; rerun to confirm):")
        for w in warnings:
            print(f"  - {w}")
            if os.environ.get("GITHUB_ACTIONS"):
                print(f"::warning title=bench advisory::{w}")

    if failures:
        print("\nbench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nbench gate passed" + (" (with advisory warnings)" if warnings else ""))


if __name__ == "__main__":
    main()
