//! NMAP's offline threshold profiling (§4.2), step by step: feed a
//! profiling run's NAPI poll batches into the [`ThresholdProfiler`]
//! and show how `NI_TH` and `CU_TH` come out — then demonstrate that
//! the thresholds transfer across load levels without re-profiling.
//!
//! ```sh
//! cargo run --release --example threshold_profiling
//! ```
//!
//! [`ThresholdProfiler`]: nmap::ThresholdProfiler

use experiments::{run, thresholds, GovernorKind, RunConfig, Scale};
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    for app in [AppKind::Memcached, AppKind::Nginx] {
        // One lightweight profiling run at the SLO-defining load…
        let cfg = thresholds::nmap_config(app);
        println!(
            "{app}: profiled NI_TH = {} polling packets/episode, CU_TH = {:.2}",
            cfg.ni_threshold, cfg.cu_threshold
        );
        // …and the same thresholds hold across every load level
        // (§4.2: "it does not need to reset the values when the
        // running application's load changes").
        for level in LoadLevel::all() {
            let load = LoadSpec::preset(app, level);
            let r = run(RunConfig::new(
                app,
                load,
                GovernorKind::Nmap(cfg),
                Scale::Quick,
            ));
            println!(
                "    {level:<7} p99 = {:>10}  over-SLO = {:>6}  power = {:>6.1} W  -> {}",
                experiments::report::fmt_dur(r.p99),
                experiments::report::fmt_pct(r.frac_above_slo),
                r.avg_power_w,
                if r.meets_slo() {
                    "meets SLO"
                } else {
                    "VIOLATES"
                },
            );
        }
        println!();
    }
}
