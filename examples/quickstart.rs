//! Quickstart: simulate a memcached server for half a second under
//! two governors and compare tail latency and energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use appsim::{AppModel, Testbed, TestbedConfig};
use governors::{MenuPolicy, Ondemand, PStateGovernor, Performance, SleepPolicy};
use simcore::{SimDuration, SimTime, Simulator};
use workload::LoadSpec;

fn simulate(name: &str, governor: Box<dyn PStateGovernor>, sleep: Box<dyn SleepPolicy>) {
    // 100K requests/s arriving in 100 ms bursts with a 40% duty cycle.
    let load = LoadSpec::custom(100_000.0, SimDuration::from_millis(100), 0.4, 0.3);
    let cfg = TestbedConfig::new(AppModel::memcached(), load).with_seed(7);
    let mut sim = Simulator::new();
    let mut tb = Testbed::new(cfg, governor, sleep, &mut sim);

    // Warm up 100 ms, then measure 500 ms.
    sim.run_until(&mut tb, SimTime::from_millis(100));
    tb.begin_measurement(sim.now());
    sim.run_until(&mut tb, SimTime::from_millis(600));

    let now = sim.now();
    let p99 = tb.client.latencies_mut().p99();
    let energy = tb.measured_energy(now);
    let watts = energy / tb.measured_duration(now).as_secs_f64();
    println!(
        "{name:>12}:  {} requests, p99 = {p99}, package power = {watts:.1} W",
        tb.client.received(),
    );
}

fn main() {
    println!("memcached @ 100K RPS, bursty, 8-core Xeon Gold 6134 model\n");
    let table = cpusim::ProcessorProfile::xeon_gold_6134().pstates;
    simulate(
        "performance",
        Box::new(Performance::new()),
        Box::new(MenuPolicy::new(8)),
    );
    simulate(
        "ondemand",
        Box::new(Ondemand::new(table, 8)),
        Box::new(MenuPolicy::new(8)),
    );
    println!("\nperformance buys the lowest tail by burning the most power;");
    println!("ondemand saves power but lets bursts pile up before it reacts.");
    println!("Run `cargo run --release -p experiments --bin repro -- fig12` for the full matrix.");
}
