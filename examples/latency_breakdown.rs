//! Where does each microsecond go? Per-request latency attribution
//! plus the streaming SLO watchdog, ondemand vs NMAP — a miniature of
//! the `breakdown` repro artifact and of the paper's §3 argument.
//!
//! ```sh
//! cargo run --release --example latency_breakdown
//! ```

use experiments::{run, thresholds, GovernorKind, RunConfig, Scale};
use simcore::Stage;
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    let app = AppKind::Memcached;
    let load = LoadSpec::preset(app, LoadLevel::Medium);
    println!(
        "memcached @ medium load ({} RPS average), SLO 1 ms",
        load.avg_rps as u64
    );
    println!(
        "every request's latency is split into {} stages;",
        Stage::ALL.len()
    );
    println!("the conservation ledger proves the stages sum to the measured e2e.\n");

    let governors = [
        ("ondemand", GovernorKind::Ondemand),
        ("NMAP", GovernorKind::Nmap(thresholds::nmap_config(app))),
    ];
    let results: Vec<_> = governors
        .iter()
        .map(|&(name, gov)| (name, run(RunConfig::new(app, load, gov, Scale::Quick))))
        .collect();

    println!("{:<10} {:>10} {:>10}", "stage", "ondemand", "NMAP");
    for stage in Stage::ALL {
        println!(
            "{:<10} {:>9.2}% {:>9.2}%",
            stage.label(),
            results[0].1.attrib.share(stage) * 100.0,
            results[1].1.attrib.share(stage) * 100.0,
        );
    }

    println!();
    for (name, r) in &results {
        assert_eq!(r.attrib.mismatches, 0, "attribution must be exact");
        println!(
            "{name:<10} requests {:>7}  e2e P99 {}  watchdog: {} violation episode(s), \
             {} ns in violation",
            r.attrib.requests,
            experiments::report::fmt_dur(r.p99),
            r.watchdog.episodes,
            r.watchdog.total_violation_ns,
        );
    }
    println!(
        "\nThe paper's §3 in one table: running below the needed V/F point, \
         ondemand falls behind\nthe arrival rate, so latency piles up in \
         ksoftirqd/ring residency and the app queue;\nNMAP holds the pipeline \
         drained and its shares stay at the fixed per-request costs."
    );
}
