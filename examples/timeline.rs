//! Watch a run unfold: the telemetry timeline of one simulation cell
//! printed as CSV plus terminal sparklines — a miniature of the
//! `timeline` repro artifact. The sampler reads every core's gauges
//! (utilization, P-state, NAPI mode, queue depths, online P99, power)
//! on a fixed sim-time cadence, decimating to stay within a bounded
//! buffer, without perturbing the simulated trajectory.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use experiments::{run, thresholds, GovernorKind, RunConfig, Scale};
use simcore::{sparkline, Gauge, SimDuration, TimelineConfig};
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    let app = AppKind::Memcached;
    let load = LoadSpec::preset(app, LoadLevel::High);
    let cfg = RunConfig::new(
        app,
        load,
        GovernorKind::Nmap(thresholds::nmap_config(app)),
        Scale::Quick,
    )
    // A small buffer so decimation is visible in the output: the
    // sampler halves its resolution each time the buffer fills.
    .with_timeline(TimelineConfig {
        interval: SimDuration::from_micros(50),
        cap: 128,
    });
    println!(
        "memcached @ high load ({} RPS average), NMAP governor",
        load.avg_rps as u64
    );
    let r = run(cfg);
    let t = &r.timeline;
    if t.is_empty() {
        println!("timeline empty — rebuild with `--features obs` to sample gauges");
        return;
    }
    println!(
        "{} rows, {} cores; interval {} us (started at {} us, {} decimation(s), {} samples dropped)\n",
        t.rows(),
        t.cores,
        t.interval_ns / 1_000,
        t.base_interval_ns / 1_000,
        t.decimations,
        t.dropped,
    );

    println!("sparklines (low..high maps to ` .:-=+*#%@`):");
    let width = 64;
    for (label, series) in [
        ("p99 ns (worst core)", t.series_max(Gauge::P99Ns)),
        ("cores polling", t.series_sum(Gauge::NapiPolling)),
        ("power mW (chip)", t.series_sum(Gauge::PowerMw)),
        ("rx ring (worst)", t.series_max(Gauge::RxRing)),
        ("app queue (worst)", t.series_max(Gauge::AppQueue)),
    ] {
        let peak = series.iter().copied().max().unwrap_or(0);
        println!("{label:<20} |{}| peak {peak}", sparkline(&series, width));
    }

    println!("\nfirst rows of the CSV export (time_ns,core,gauges…):");
    for line in r.timeline.to_csv().lines().take(1 + t.cores as usize * 2) {
        println!("  {line}");
    }
    println!(
        "  … ({} lines total; `experiments::write_timeline_csv` / \
         `write_timeline_openmetrics` export the full series)",
        t.rows() * t.cores as usize + 1
    );
}
