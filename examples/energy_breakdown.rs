//! Where does each joule go? Per-component energy attribution plus
//! the governor decision flight recorder, ondemand vs NMAP — a
//! miniature of the `energy` repro artifact: the paper's energy story
//! (one RAPL scalar per cell) opened up into typed components and
//! packet-processing modes.
//!
//! ```sh
//! cargo run --release --example energy_breakdown
//! ```

use experiments::{run, thresholds, GovernorKind, RunConfig, Scale};
use simcore::{DecisionTrigger, EnergyComponent};
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    let app = AppKind::Memcached;
    let load = LoadSpec::preset(app, LoadLevel::Medium);
    println!(
        "memcached @ medium load ({} RPS average)",
        load.avg_rps as u64
    );
    println!(
        "every microjoule is attributed to one of {} components;",
        EnergyComponent::ALL.len()
    );
    println!("the conservation audit proves attributed == measured, per core.\n");

    let governors = [
        ("ondemand", GovernorKind::Ondemand),
        ("NMAP", GovernorKind::Nmap(thresholds::nmap_config(app))),
    ];
    let results: Vec<_> = governors
        .iter()
        .map(|&(name, gov)| (name, run(RunConfig::new(app, load, gov, Scale::Quick))))
        .collect();

    println!("{:<12} {:>10} {:>10}", "component", "ondemand", "NMAP");
    for component in EnergyComponent::ALL {
        println!(
            "{:<12} {:>9.2}% {:>9.2}%",
            component.label(),
            results[0].1.energy.share(component) * 100.0,
            results[1].1.energy.share(component) * 100.0,
        );
    }

    println!("\nby packet-processing mode (interrupt / polling / wake transition):");
    for (name, r) in &results {
        let e = &r.energy;
        assert_eq!(
            e.measured_total_uj(),
            e.attributed_total_uj(),
            "attribution must be exact"
        );
        let m = &e.modes;
        let total = m.total_uj().max(1) as f64;
        println!(
            "{name:<10} total {:>8.3} J  intr {:>5.1}%  poll {:>5.1}%  trans {:>5.1}%",
            r.energy_j,
            m.interrupt_uj as f64 / total * 100.0,
            m.polling_uj as f64 / total * 100.0,
            m.transition_uj as f64 / total * 100.0,
        );
    }

    println!("\ngovernor flight recorder (what each decision acted on):");
    for (name, r) in &results {
        let f = &r.gov_flight;
        let triggers: Vec<String> = DecisionTrigger::ALL
            .iter()
            .filter(|&&t| f.trigger_count(t) > 0)
            .map(|&t| format!("{} ×{}", t.label(), f.trigger_count(t)))
            .collect();
        println!(
            "{name:<10} {:>4} decisions ({} raises, {} lowers)  [{}]",
            f.total,
            f.raises,
            f.lowers,
            triggers.join(", "),
        );
    }
    println!(
        "\nThe paper's thesis stated in joules: under ondemand the busy energy \
         shifts into the\nlow P-state buckets but the core pays for it in \
         wake-transition and IRQ overhead as it\nsleeps and reheats across mode \
         flips; NMAP keeps energy aligned with the packet-\nprocessing mode, \
         and its decisions cluster on mode-transition signals rather than a \
         fixed\nsampling clock."
    );
}
