//! Watch NAPI mode transitions track a burst (the paper's Fig 2/9
//! view): per-millisecond interrupt-mode vs polling-mode packet
//! counts, ksoftirqd wake-ups, and the P-state trace of one core.
//!
//! ```sh
//! cargo run --release --example memcached_bursty [ondemand|nmap|performance]
//! ```

use experiments::{runner, thresholds, GovernorKind, RunConfig, Scale};
use simcore::{SimDuration, SimTime};
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ondemand".into());
    let app = AppKind::Memcached;
    let gov = match which.as_str() {
        "nmap" => GovernorKind::Nmap(thresholds::nmap_config(app)),
        "performance" => GovernorKind::Performance,
        _ => GovernorKind::Ondemand,
    };
    let cfg = RunConfig::new(
        app,
        LoadSpec::preset(app, LoadLevel::High),
        gov,
        Scale::Quick,
    )
    .with_traces();
    let (r, _tb) = runner::run_with_testbed(cfg, |_, _| {});
    let t = r.traces.as_ref().unwrap();
    println!(
        "memcached @ high load under {} — core 0, one 100 ms burst period\n",
        r.governor
    );
    println!(
        "{:>4} {:>7} {:>10} {:>10} {:>6}",
        "ms", "pstate", "intr_pkts", "poll_pkts", "wakes"
    );
    let start = t.measure_start;
    let bin = SimDuration::from_millis(1);
    let mut pstate = 15u8;
    let mut events = t.pstates_core0.iter().peekable();
    for ms in 0..100u64 {
        let lo = start + bin * ms;
        let hi = lo + bin;
        while let Some(&&(tt, p)) = events.peek() {
            if tt <= lo {
                pstate = p;
                events.next();
            } else {
                break;
            }
        }
        let sum_in = |log: &[(SimTime, u64)]| -> u64 {
            log.iter()
                .filter(|&&(tt, _)| tt >= lo && tt < hi)
                .map(|&(_, n)| n)
                .sum()
        };
        let intr = sum_in(&t.intr_batches_core0);
        let poll = sum_in(&t.poll_batches_core0);
        let wakes = t
            .ksoftirqd_wakes_core0
            .iter()
            .filter(|&&tt| tt >= lo && tt < hi)
            .count();
        let bar = "#".repeat(((intr + poll) / 20).min(40) as usize);
        println!(
            "{ms:>4} {:>7} {intr:>10} {poll:>10} {wakes:>6}  {bar}",
            format!("P{pstate}")
        );
    }
    println!(
        "\np99 = {}, {} over SLO — try `nmap` vs `ondemand` to see the early boost.",
        experiments::report::fmt_dur(r.p99),
        experiments::report::fmt_pct(r.frac_above_slo),
    );
}
