//! Export a run's raw traces to CSV for plotting with external tools
//! (gnuplot, matplotlib, …): per-response latencies, core 0's P-state
//! steps, and the NAPI interrupt/polling/ksoftirqd activity — plus
//! the full structured trace as Perfetto-loadable `trace.json`.
//!
//! ```sh
//! cargo run --release --example export_traces -- /tmp/nmap_traces nmap
//! ```

use experiments::{run_profiled, thresholds, GovernorKind, RunConfig, Scale};
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nmap_traces".into());
    let which = std::env::args().nth(2).unwrap_or_else(|| "nmap".into());
    let app = AppKind::Memcached;
    let gov = match which.as_str() {
        "ondemand" => GovernorKind::Ondemand,
        "performance" => GovernorKind::Performance,
        "online" => GovernorKind::NmapOnline,
        _ => GovernorKind::Nmap(thresholds::nmap_config(app)),
    };
    let cfg = RunConfig::new(
        app,
        LoadSpec::preset(app, LoadLevel::High),
        gov,
        Scale::Quick,
    )
    .with_traces();
    let (result, profile) = run_profiled(cfg);
    experiments::export::write_traces_csv(&result, &dir).expect("write CSVs");
    let json_path = std::path::Path::new(&dir).join("trace.json");
    experiments::export::write_perfetto_json(&result, &json_path).expect("write trace.json");
    println!(
        "wrote responses.csv / pstates.csv / napi.csv / trace.json to {dir}/ ({} responses, governor {})",
        result.received, result.governor
    );
    println!(
        "p99 = {}, {} above SLO, avg package power {:.1} W",
        experiments::report::fmt_dur(result.p99),
        experiments::report::fmt_pct(result.frac_above_slo),
        result.avg_power_w
    );
    println!("engine: {}", experiments::report::fmt_profile(&profile));
    if let Some(t) = &result.traces {
        println!(
            "structured trace: {} events ({} dropped at capacity)",
            t.trace.len(),
            t.trace.dropped()
        );
    }
    println!("\nplot e.g.:  gnuplot -e \"set datafile separator ','; plot '{dir}/responses.csv' every ::1 using 1:2 with dots\"");
    println!(
        "view the timeline: open https://ui.perfetto.dev and drag in {}",
        json_path.display()
    );
}
