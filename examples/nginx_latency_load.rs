//! Trace nginx's latency-load curve (how the paper picks SLOs: the
//! inflection point of P99 vs offered load, §3.1) under two
//! governors.
//!
//! ```sh
//! cargo run --release --example nginx_latency_load
//! ```

use experiments::{run_many, GovernorKind, RunConfig, Scale};
use simcore::SimDuration;
use workload::{AppKind, LoadSpec};

fn main() {
    let loads = [
        10_000.0, 20_000.0, 30_000.0, 40_000.0, 48_000.0, 56_000.0, 62_000.0,
    ];
    let mut configs = Vec::new();
    for &rps in &loads {
        // Burstiness grows mild with load, as in the presets.
        let duty = 0.5 + 0.4 * (rps - 10_000.0) / 52_000.0;
        let load = LoadSpec::custom(rps, SimDuration::from_millis(100), duty, 0.3);
        configs.push(RunConfig::new(
            AppKind::Nginx,
            load,
            GovernorKind::Performance,
            Scale::Quick,
        ));
        configs.push(RunConfig::new(
            AppKind::Nginx,
            load,
            GovernorKind::Ondemand,
            Scale::Quick,
        ));
    }
    let results = run_many(configs);
    println!("nginx latency-load curve (P99), SLO = 10 ms\n");
    println!("{:>8} {:>14} {:>14}", "RPS", "performance", "ondemand");
    for (i, &rps) in loads.iter().enumerate() {
        let perf = &results[2 * i];
        let ond = &results[2 * i + 1];
        println!(
            "{:>8} {:>14} {:>13}{}",
            rps as u64,
            experiments::report::fmt_dur(perf.p99),
            experiments::report::fmt_dur(ond.p99),
            if ond.meets_slo() { " " } else { "*" },
        );
    }
    println!("\n'*' marks an SLO violation. The knee of the performance curve is where");
    println!("the paper's methodology would place the SLO for this testbed.");
}
