//! Governor showdown: every V/F policy on the same bursty memcached
//! load, with SLO verdicts — a miniature of the paper's Fig 12/13.
//!
//! ```sh
//! cargo run --release --example governor_showdown
//! ```

use experiments::{run, thresholds, GovernorKind, RunConfig, Scale};
use workload::{AppKind, LoadLevel, LoadSpec};

fn main() {
    let app = AppKind::Memcached;
    let load = LoadSpec::preset(app, LoadLevel::Medium);
    println!(
        "memcached @ medium load ({} RPS average, {} RPS burst peak), SLO 1 ms\n",
        load.avg_rps as u64,
        load.peak_rps() as u64
    );
    let nmap_cfg = thresholds::nmap_config(app);
    println!(
        "NMAP thresholds from offline profiling: NI_TH={} packets/episode, CU_TH={:.2}\n",
        nmap_cfg.ni_threshold, nmap_cfg.cu_threshold
    );
    let governors = [
        GovernorKind::Powersave,
        GovernorKind::IntelPowersave,
        GovernorKind::Ondemand,
        GovernorKind::Conservative,
        GovernorKind::Schedutil,
        GovernorKind::NmapSimpl,
        GovernorKind::Nmap(nmap_cfg),
        GovernorKind::Ncap(thresholds::ncap_threshold(app)),
        GovernorKind::Performance,
    ];
    println!(
        "{:<16} {:>10} {:>9} {:>8} {:>8}  verdict",
        "governor", "p99", "over-SLO", "power", "dvfs#"
    );
    for gov in governors {
        let r = run(RunConfig::new(app, load, gov, Scale::Quick));
        println!(
            "{:<16} {:>10} {:>8.2}% {:>7.1}W {:>8}  {}",
            r.governor,
            format!("{}", experiments::report::fmt_dur(r.p99)),
            r.frac_above_slo * 100.0,
            r.avg_power_w,
            r.dvfs_transitions,
            if r.meets_slo() {
                "meets SLO"
            } else {
                "VIOLATES"
            },
        );
    }
    println!("\nNMAP should meet the SLO at a fraction of performance's power —");
    println!("that gap is the paper's headline result.");
}
