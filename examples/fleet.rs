//! An 8-server NMAP fleet riding through two staggered server
//! crashes: health-checked ejection, retry/failover, tail hedging,
//! readmission — with the cross-server conservation roll-up holding
//! exactly throughout.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use cluster::{run_fleet, FleetConfig, GovernorKind};
use experiments::{report, thresholds};
use simcore::fault::{FaultKind, FaultPlan, FaultScope};
use simcore::{SimDuration, SimTime};
use workload::AppKind;

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

fn main() {
    let app = AppKind::Memcached;
    // Two staggered crash-and-recover windows: server 2 dies for
    // [150, 300) ms, server 5 for [250, 400) ms, so the fleet spends
    // 50 ms two servers down. Both recover with 200+ ms to spare.
    let plan = FaultPlan::new()
        .with_seed(5)
        .inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(150), ms(300)).on_core(2),
        )
        .inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(250), ms(400)).on_core(5),
        );
    let cfg = FleetConfig::new(
        8,
        app,
        80_000.0,
        GovernorKind::Nmap(thresholds::nmap_config(app)),
    )
    .with_window(SimDuration::from_millis(100), SimDuration::from_millis(500))
    .with_seed(7)
    .with_fault_plan(plan);
    println!("8-server NMAP fleet, 80 kRPS, crash windows [150,300)ms@s2 and [250,400)ms@s5\n");

    let r = run_fleet(cfg);

    println!(
        "fleet P99 {}   P50 {}   availability {}   energy {:.1} J",
        report::fmt_dur(r.p99),
        report::fmt_dur(r.p50),
        report::fmt_pct(r.availability),
        r.energy_j,
    );
    println!(
        "requests: {} admitted = {} completed + {} timed out + {} in flight",
        r.admitted, r.completed, r.timed_out, r.in_flight_at_end
    );
    println!(
        "attempts: {} dispatched = {} completed + {} crash-failed + {} hedge-suppressed + {} outstanding",
        r.dispatched, r.attempts_completed, r.attempts_failed, r.suppressed,
        r.attempts_in_flight_at_end
    );
    println!(
        "tail defence: {} retries, {} hedges, {} failovers; health: {} ejections, {} readmissions\n",
        r.retries, r.hedges, r.failovers, r.ejections, r.readmissions
    );

    println!(
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>6} {:>6}",
        "server",
        "steered",
        "served",
        "won",
        "crashes",
        "ejected",
        "p99",
        "energy",
        "degr",
        "recov"
    );
    for (i, s) in r.servers.iter().enumerate() {
        println!(
            "s{:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7.1}J {:>6} {:>6}",
            i,
            s.dispatched,
            s.delivered,
            s.won,
            s.crashes,
            if s.ejected_at_end { "yes" } else { "no" },
            report::fmt_dur(s.p99_internal),
            s.energy_j,
            s.degradation.degradations,
            s.degradation.recoveries,
        );
    }

    println!(
        "\nconservation roll-up: {} — every crash-dropped attempt is accounted,",
        if r.audit.is_balanced() {
            "balanced"
        } else {
            "VIOLATED"
        }
    );
    println!("every ejected server readmitted, and the fleet never lost a request silently.");
}
